//! Scenario layer: named, runnable experiment setups.
//!
//! A [`Scenario`] bundles everything one runtime experiment needs — the
//! query, the cluster, the workload, the simulation parameters, and the set
//! of [`StrategySpec`]s to compare — so that bench binaries, integration
//! tests and examples stop hand-assembling deployments. Scenarios come from
//! two places:
//!
//! * [`Scenario::builder`] — compose one programmatically (the fig15/fig16
//!   binaries do this per sweep point), or
//! * [`builtin`] — look a predefined scenario up **by name** (the
//!   `scenario` bench binary and the integration tests do this).
//!
//! Running a scenario builds each strategy fresh (so every strategy starts
//! from the same compile-time inputs), simulates it against the shared
//! workload, and reports per-strategy metrics. Strategies whose compile-time
//! deployment is infeasible on the scenario's cluster are reported as
//! skipped instead of aborting the comparison — the paper's ROD similarly
//! drops out of regimes it cannot keep up with.

use crate::baselines::{deploy_dyn, deploy_rod};
use crate::compiler::{Deployment, SolverStats};
use crate::optimizer::{PhysicalStrategy, RldConfig};
use rld_common::{NodeId, Query, Result, RldError};
use rld_engine::{
    DistributionStrategy, FaultPlan, RecoverySemantic, RunMetrics, SimConfig, Simulator,
};
use rld_exec::{ColumnarConfig, ColumnarExecutor, ExecConfig, ThreadedExecutor};
use rld_physical::Cluster;
use rld_query::{CostModel, JoinOrderOptimizer, Optimizer};
use rld_workloads::{RatePattern, SelectivityPattern, StockWorkload, SyntheticWorkload, Workload};

/// Seed shared by every predefined scenario and the experiment harness.
pub const SCENARIO_SEED: u64 = 0xF1D0_2013;

/// Short names of the strategies [`ScenarioBuilder::default_strategies`]
/// configures, in run order — the column order of the figure tables.
pub const DEFAULT_STRATEGY_NAMES: [&str; 4] = ["ROD", "DYN", "RLD", "HYB"];

/// Which execution backend a scenario runs its strategies on. Every builtin
/// scenario runs on either backend unchanged — same query, cluster,
/// workload, fault plan, strategies, and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The discrete-tick simulator (`rld-engine`): work is an abstract
    /// scalar, queueing is modelled, runs are bit-deterministic per seed.
    #[default]
    Simulate,
    /// The threaded executor (`rld-exec`): real tuples through real operator
    /// state on one worker thread per node; latencies are wall-clock.
    Execute,
    /// The columnar executor (`rld-exec`): the same policy loop over a
    /// vectorized dataplane — struct-of-arrays batches, fused operator
    /// chains, SPSC-ring shard workers.
    ExecuteColumnar,
}

impl Backend {
    /// The backend's short name (`"simulate"` / `"execute"` /
    /// `"execute-columnar"`).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Simulate => "simulate",
            Backend::Execute => "execute",
            Backend::ExecuteColumnar => "execute-columnar",
        }
    }

    /// Look a backend up by name.
    pub fn by_name(name: &str) -> Result<Self> {
        match name {
            "simulate" | "sim" => Ok(Backend::Simulate),
            "execute" | "exec" => Ok(Backend::Execute),
            "execute-columnar" | "columnar" | "col" => Ok(Backend::ExecuteColumnar),
            other => Err(RldError::NotFound(format!(
                "backend '{other}' (known: simulate, execute, execute-columnar)"
            ))),
        }
    }
}

/// Which deployment policy to build for a scenario, and with which
/// compile-time inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategySpec {
    /// The paper's contribution: robust logical solution + robust physical
    /// plan, compiled by the [`crate::compiler::RobustCompiler`] with this
    /// configuration.
    Rld(RldConfig),
    /// The static baseline: one plan, one placement, no adaptation.
    Rod,
    /// The migrating baseline, rebalancing every `rebalance_period_secs`.
    Dyn {
        /// How often the controller re-evaluates the placement, in seconds.
        rebalance_period_secs: f64,
    },
    /// RLD classification plus out-of-region migration fallback.
    Hybrid {
        /// The RLD compile-time configuration.
        config: RldConfig,
        /// How often the fallback controller may migrate, in seconds.
        rebalance_period_secs: f64,
    },
}

impl StrategySpec {
    /// The strategy's short name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::Rld(_) => "RLD",
            StrategySpec::Rod => "ROD",
            StrategySpec::Dyn { .. } => "DYN",
            StrategySpec::Hybrid { .. } => "HYB",
        }
    }

    /// The RLD compile-time configuration this spec deploys from, if any.
    fn rld_config(&self) -> Option<&RldConfig> {
        match self {
            StrategySpec::Rld(config) | StrategySpec::Hybrid { config, .. } => Some(config),
            StrategySpec::Rod | StrategySpec::Dyn { .. } => None,
        }
    }

    /// Build the runtime strategy for a query on a cluster. RLD and Hybrid
    /// compile a full [`Deployment`] through the
    /// [`crate::compiler::RobustCompiler`]; ROD and DYN plan at the query's
    /// default statistics. ([`Scenario::run`] shares one compile between
    /// specs with the same configuration instead of calling this.)
    pub fn build(&self, query: &Query, cluster: &Cluster) -> Result<Box<dyn DistributionStrategy>> {
        let deployment = match self.rld_config() {
            Some(config) => Some(config.compiler(query.clone()).compile(cluster)?),
            None => None,
        };
        self.build_from(query, cluster, deployment.as_ref())
    }

    /// Build the runtime strategy, deploying RLD/Hybrid from an already
    /// compiled deployment. `solution` is required exactly when
    /// [`Self::rld_config`] is `Some`.
    fn build_from(
        &self,
        query: &Query,
        cluster: &Cluster,
        solution: Option<&Deployment>,
    ) -> Result<Box<dyn DistributionStrategy>> {
        let solution_for = |spec: &Self| {
            solution.ok_or_else(|| {
                RldError::InvalidArgument(format!(
                    "{} spec needs a compile-time RLD solution",
                    spec.name()
                ))
            })
        };
        match self {
            StrategySpec::Rld(_) => Ok(Box::new(solution_for(self)?.deploy())),
            StrategySpec::Rod => {
                deploy_rod(query, &query.default_stats(), cluster).map(|s| Box::new(s) as _)
            }
            StrategySpec::Dyn {
                rebalance_period_secs,
            } => deploy_dyn(
                query,
                &query.default_stats(),
                cluster,
                *rebalance_period_secs,
            )
            .map(|s| Box::new(s) as _),
            StrategySpec::Hybrid {
                rebalance_period_secs,
                ..
            } => Ok(Box::new(
                solution_for(self)?.deploy_hybrid(*rebalance_period_secs),
            )),
        }
    }
}

/// The outcome of one strategy within a scenario run.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// The strategy's short name (`"RLD"`, `"ROD"`, `"DYN"`, `"HYB"`).
    pub strategy: String,
    /// The run's metrics, when the strategy could be deployed.
    pub metrics: Option<RunMetrics>,
    /// Why the strategy was skipped (compile-time deployment infeasible).
    pub skipped: Option<String>,
    /// Compile-time solver statistics, for strategies deployed through the
    /// [`crate::compiler::RobustCompiler`] (RLD and HYB).
    pub solver_stats: Option<SolverStats>,
}

/// The result of running every strategy of a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario's name.
    pub scenario: String,
    /// The backend the strategies ran on (`"simulate"` / `"execute"`).
    pub backend: String,
    /// One outcome per configured strategy, in configuration order.
    pub outcomes: Vec<StrategyOutcome>,
}

impl ScenarioReport {
    /// The metrics of every strategy that actually ran.
    pub fn metrics(&self) -> impl Iterator<Item = &RunMetrics> {
        self.outcomes.iter().filter_map(|o| o.metrics.as_ref())
    }

    /// The metrics of one strategy by short name, if it ran.
    pub fn metrics_for(&self, name: &str) -> Option<&RunMetrics> {
        self.metrics().find(|m| m.system == name)
    }
}

/// A named, runnable runtime experiment: query + cluster + workload +
/// simulation parameters + the strategies to compare.
pub struct Scenario {
    name: String,
    description: String,
    query: Query,
    cluster: Cluster,
    workload: Box<dyn Workload>,
    sim: SimConfig,
    faults: FaultPlan,
    strategies: Vec<StrategySpec>,
}

impl Scenario {
    /// Start building a scenario for a query.
    pub fn builder(name: impl Into<String>, query: Query) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            description: String::new(),
            query,
            cluster: None,
            workload: None,
            sim: SimConfig {
                seed: SCENARIO_SEED,
                ..SimConfig::default()
            },
            faults: FaultPlan::none(),
            strategies: Vec::new(),
        }
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description of what the scenario exercises.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The query under test.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The cluster the strategies deploy onto.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The workload driving the run.
    pub fn workload(&self) -> &dyn Workload {
        self.workload.as_ref()
    }

    /// The simulation parameters.
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim
    }

    /// The fault plan every strategy is exercised against (empty when the
    /// scenario simulates a fault-free cluster). The plan is part of the
    /// scenario definition, so fault experiments serialize with it.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The strategies this scenario compares, in run order.
    pub fn strategies(&self) -> &[StrategySpec] {
        &self.strategies
    }

    /// Build every strategy, run each against the workload on the
    /// simulator, and collect the per-strategy outcomes. Deployment failures
    /// become skips; simulation failures propagate. The expensive RLD
    /// compile-time optimization is shared between specs with the same
    /// configuration (the default line-up deploys RLD and Hybrid from one
    /// solution).
    pub fn run(&self) -> Result<ScenarioReport> {
        self.run_on(Backend::Simulate)
    }

    /// Like [`Self::run`], on an explicit execution backend: the simulator
    /// models the run at tick granularity, the threaded executor pushes real
    /// tuple batches through per-node worker threads. Everything else — the
    /// compile, the strategies, the workload timeline, the fault plan, the
    /// seed — is identical.
    pub fn run_on(&self, backend: Backend) -> Result<ScenarioReport> {
        enum Runner {
            Sim(Simulator),
            Exec(ThreadedExecutor),
            Columnar(ColumnarExecutor),
        }
        let runner = match backend {
            Backend::Simulate => Runner::Sim(
                Simulator::new(self.query.clone(), self.cluster.clone(), self.sim)?
                    .with_faults(self.faults.clone())?,
            ),
            Backend::Execute => Runner::Exec(
                ThreadedExecutor::new(
                    self.query.clone(),
                    self.cluster.clone(),
                    ExecConfig::from_sim(self.sim),
                )?
                .with_faults(self.faults.clone())?,
            ),
            Backend::ExecuteColumnar => Runner::Columnar(
                ColumnarExecutor::new(
                    self.query.clone(),
                    self.cluster.clone(),
                    ColumnarConfig::from_sim(self.sim),
                )?
                .with_faults(self.faults.clone())?,
            ),
        };
        let mut solved: Vec<(RldConfig, std::result::Result<Deployment, String>)> = Vec::new();
        let mut solve = |config: &RldConfig| {
            if let Some((_, cached)) = solved.iter().find(|(c, _)| c == config) {
                return cached.clone();
            }
            let result = config
                .compiler(self.query.clone())
                .compile(&self.cluster)
                .map_err(|e| e.to_string());
            solved.push((*config, result.clone()));
            result
        };
        let mut outcomes = Vec::with_capacity(self.strategies.len());
        for spec in &self.strategies {
            let mut solver_stats: Option<SolverStats> = None;
            let built: std::result::Result<Box<dyn DistributionStrategy>, String> =
                match spec.rld_config() {
                    Some(config) => solve(config).and_then(|solution| {
                        solver_stats = Some(solution.solver_stats);
                        spec.build_from(&self.query, &self.cluster, Some(&solution))
                            .map_err(|e| e.to_string())
                    }),
                    None => spec
                        .build_from(&self.query, &self.cluster, None)
                        .map_err(|e| e.to_string()),
                };
            match built {
                Ok(mut strategy) => {
                    let metrics = match &runner {
                        Runner::Sim(sim) => sim.run(self.workload.as_ref(), strategy.as_mut())?,
                        Runner::Exec(exec) => {
                            exec.run(self.workload.as_ref(), strategy.as_mut())?
                        }
                        Runner::Columnar(exec) => {
                            exec.run(self.workload.as_ref(), strategy.as_mut())?
                        }
                    };
                    outcomes.push(StrategyOutcome {
                        strategy: metrics.system.clone(),
                        metrics: Some(metrics),
                        skipped: None,
                        solver_stats,
                    });
                }
                Err(reason) => outcomes.push(StrategyOutcome {
                    strategy: spec.name().to_string(),
                    metrics: None,
                    skipped: Some(reason),
                    solver_stats: None,
                }),
            }
        }
        Ok(ScenarioReport {
            scenario: self.name.clone(),
            backend: backend.name().to_string(),
            outcomes,
        })
    }
}

/// Builder for [`Scenario`].
pub struct ScenarioBuilder {
    name: String,
    description: String,
    query: Query,
    cluster: Option<Cluster>,
    workload: Option<Box<dyn Workload>>,
    sim: SimConfig,
    faults: FaultPlan,
    strategies: Vec<StrategySpec>,
}

impl ScenarioBuilder {
    /// Set the one-line description.
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Use an explicit cluster.
    pub fn cluster(mut self, cluster: Cluster) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Use a homogeneous cluster sized by [`runtime_capacity`]: `nodes`
    /// machines sharing `slack`× the query's estimate-point load.
    pub fn homogeneous_cluster(mut self, nodes: usize, slack: f64) -> Self {
        let capacity = runtime_capacity(&self.query, nodes, slack);
        self.cluster = Some(Cluster::homogeneous(nodes, capacity).expect("valid cluster"));
        self
    }

    /// Set the workload.
    pub fn workload(mut self, workload: impl Workload + 'static) -> Self {
        self.workload = Some(Box::new(workload));
        self
    }

    /// Replace the simulation parameters wholesale — including the seed,
    /// which [`SimConfig::default`] sets differently from [`SCENARIO_SEED`];
    /// chain [`Self::seed`] afterwards to stay comparable with the builtin
    /// scenarios.
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Set only the simulated duration.
    pub fn duration_secs(mut self, duration_secs: f64) -> Self {
        self.sim.duration_secs = duration_secs;
        self
    }

    /// Set only the arrival-process seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Exercise every strategy against a fault plan (node crashes,
    /// recoveries, straggler ramps), applied at tick granularity.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Add one strategy to the comparison.
    pub fn strategy(mut self, spec: StrategySpec) -> Self {
        self.strategies.push(spec);
        self
    }

    /// Add the full §6.5 line-up — ROD, DYN, RLD and the Hybrid — with the
    /// given RLD configuration and a 5 s rebalance period for the migrating
    /// strategies.
    pub fn default_strategies(mut self, rld: RldConfig) -> Self {
        self.strategies.extend([
            StrategySpec::Rod,
            StrategySpec::Dyn {
                rebalance_period_secs: 5.0,
            },
            StrategySpec::Rld(rld),
            StrategySpec::Hybrid {
                config: rld,
                rebalance_period_secs: 5.0,
            },
        ]);
        self
    }

    /// Finish the scenario. Requires a cluster, a workload, and at least one
    /// strategy.
    pub fn build(self) -> Result<Scenario> {
        let cluster = self
            .cluster
            .ok_or_else(|| RldError::InvalidArgument("scenario needs a cluster".into()))?;
        let workload = self
            .workload
            .ok_or_else(|| RldError::InvalidArgument("scenario needs a workload".into()))?;
        if self.strategies.is_empty() {
            return Err(RldError::InvalidArgument(
                "scenario needs at least one strategy".into(),
            ));
        }
        self.faults.validate_for(cluster.num_nodes())?;
        Ok(Scenario {
            name: self.name,
            description: self.description,
            query: self.query,
            cluster,
            workload,
            sim: self.sim,
            faults: self.faults,
            strategies: self.strategies,
        })
    }
}

/// Cluster capacity used by the runtime experiments: enough to process the
/// estimate-point load with the given slack factor spread over `nodes`
/// nodes, but never below what the heaviest single operator needs.
pub fn runtime_capacity(query: &Query, nodes: usize, slack: f64) -> f64 {
    let cm = CostModel::new(query.clone());
    let opt = JoinOrderOptimizer::new(query.clone());
    let plan = opt.optimize(&query.default_stats()).expect("plan");
    let loads = cm
        .operator_loads(&plan, &query.default_stats())
        .expect("loads");
    let total: f64 = loads.iter().sum();
    let max_single = loads.iter().cloned().fold(0.0f64, f64::max);
    ((total * slack) / nodes as f64).max(max_single * 1.05)
}

/// The fluctuating workload used by the runtime experiments (Figures 15–16):
/// stream rates follow `rate`, and operator selectivities switch between two
/// regimes every `period_secs` — in regime A the even-indexed operators are
/// selective and the odd ones are not, in regime B the roles flip. This is
/// the Q2-scale analogue of the paper's bullish/bearish Example 1 and is what
/// makes a fixed plan ordering (ROD / DYN) pay for not adapting.
pub fn regime_switching_workload(
    query: &Query,
    period_secs: f64,
    rate: RatePattern,
) -> SyntheticWorkload {
    // Only the first four operators fluctuate (alternating directions); the
    // rest stay at their estimates. This matches the uncertainty RLD is told
    // about in [`runtime_rld_config`] — the paper's guarantee only holds for
    // fluctuations inside the modelled parameter space.
    let n = query.num_operators();
    let fluctuating = n.min(4);
    let regime_a: Vec<f64> = (0..n)
        .map(|i| {
            if i >= fluctuating {
                1.0
            } else if i % 2 == 0 {
                0.5
            } else {
                1.5
            }
        })
        .collect();
    let regime_b: Vec<f64> = (0..n)
        .map(|i| {
            if i >= fluctuating {
                1.0
            } else if i % 2 == 0 {
                1.5
            } else {
                0.5
            }
        })
        .collect();
    SyntheticWorkload::new(
        format!("regime-switch-{period_secs}s"),
        query.clone(),
        rate,
        SelectivityPattern::RegimeSwitch {
            period_secs,
            regimes: vec![regime_a, regime_b],
        },
    )
}

/// The RLD configuration used by the runtime experiments: a parameter space
/// wide enough (U = 5 → ±50%) to cover the regime switches above, and a tight
/// robustness threshold so the routed plans stay close to optimal.
pub fn runtime_rld_config() -> RldConfig {
    let mut config = RldConfig::default()
        .with_uncertainty(5)
        .with_epsilon(0.1)
        .with_dimensions(4);
    config.grid_steps = 7;
    config
}

/// Names of every predefined scenario, in presentation order.
pub fn builtin_names() -> Vec<&'static str> {
    vec![
        "q1-stock",
        "q1-overload",
        "q2-regime-switch",
        "q2-rate-steps",
        "q1-wide-cluster",
        "q1-node-crash",
        "q2-straggler",
        "q1-flap",
    ]
}

/// Names of the fault-plane scenarios (a subset of [`builtin_names`]), in
/// presentation order — what the `faults` bench binary sweeps.
pub fn fault_scenario_names() -> Vec<&'static str> {
    vec!["q1-node-crash", "q2-straggler", "q1-flap"]
}

/// Look a predefined scenario up by name. Unknown names list the known ones.
pub fn builtin(name: &str) -> Result<Scenario> {
    match name {
        "q1-stock" => {
            let query = Query::q1_stock_monitoring();
            Scenario::builder("q1-stock", query)
                .describe("Q1 under bullish/bearish regime switches on a comfortable cluster")
                .homogeneous_cluster(4, 3.0)
                .workload(StockWorkload::default_config())
                .duration_secs(300.0)
                .default_strategies(RldConfig::default().with_uncertainty(3))
                .build()
        }
        "q1-overload" => {
            let query = Query::q1_stock_monitoring();
            let workload = StockWorkload::new(
                20.0,
                RatePattern::Periodic {
                    period_secs: 20.0,
                    high_scale: 2.0,
                    low_scale: 0.5,
                },
            );
            Scenario::builder("q1-overload", query)
                .describe("Q1 on a tight cluster with periodic 2x rate surges: DYN must migrate")
                .homogeneous_cluster(4, 1.6)
                .workload(workload)
                .duration_secs(240.0)
                .default_strategies(RldConfig::default().with_uncertainty(3))
                .build()
        }
        "q2-regime-switch" => {
            let query = Query::q2_ten_way_join();
            let workload = regime_switching_workload(
                &query,
                90.0,
                RatePattern::Periodic {
                    period_secs: 10.0,
                    high_scale: 2.0,
                    low_scale: 0.5,
                },
            );
            Scenario::builder("q2-regime-switch", query)
                .describe("Q2 with selectivity regime switches and 2x/0.5x rate alternation")
                .homogeneous_cluster(10, 3.0)
                .workload(workload)
                .duration_secs(900.0)
                .default_strategies(runtime_rld_config())
                .build()
        }
        "q2-rate-steps" => {
            let query = Query::q2_ten_way_join();
            let workload = regime_switching_workload(
                &query,
                90.0,
                RatePattern::Steps(vec![(0.0, 0.5), (1200.0, 1.0), (2400.0, 2.0)]),
            );
            Scenario::builder("q2-rate-steps", query)
                .describe("Q2 with input rates stepping 50% -> 100% -> 200% (Figure 15b)")
                .homogeneous_cluster(10, 2.5)
                .workload(workload)
                .duration_secs(3600.0)
                .default_strategies(runtime_rld_config())
                .build()
        }
        "q1-wide-cluster" => {
            let query = Query::q1_stock_monitoring();
            // 128 heterogeneous machines in three capacity tiers. The tier
            // pattern is fixed (not seeded) so the scenario is identical on
            // every backend and every run.
            let base = runtime_capacity(&query, 128, 3.0);
            let tiers = [1.0, 1.25, 1.5];
            let capacities: Vec<f64> = (0..128).map(|i| base * tiers[i % tiers.len()]).collect();
            let mut config = RldConfig::default().with_uncertainty(3);
            // OptPrune requires a homogeneous cluster; the wide tiered cluster
            // exercises the heap-based LLF packing inside GreedyPhy instead.
            config.physical_strategy = PhysicalStrategy::Greedy;
            Scenario::builder("q1-wide-cluster", query)
                .describe(
                    "Q1 spread across 128 heterogeneous nodes (three capacity tiers): \
                     stresses the scaled GreedyPhy/LLF packing path",
                )
                .cluster(Cluster::new(capacities)?)
                .workload(StockWorkload::default_config())
                .duration_secs(60.0)
                .default_strategies(config)
                .build()
        }
        "q1-node-crash" => {
            let query = Query::q1_stock_monitoring();
            Scenario::builder("q1-node-crash", query)
                .describe(
                    "Q1 with node 1 crashing at t=60s and recovering at t=180s (backlog lost): \
                     DYN/HYB fail over, RLD/ROD ride it out",
                )
                .homogeneous_cluster(4, 3.0)
                .workload(StockWorkload::default_config())
                .duration_secs(300.0)
                .faults(FaultPlan::node_crash(
                    NodeId::new(1),
                    60.0,
                    180.0,
                    RecoverySemantic::Lost,
                )?)
                .default_strategies(RldConfig::default().with_uncertainty(3))
                .build()
        }
        "q2-straggler" => {
            let query = Query::q2_ten_way_join();
            let workload = regime_switching_workload(&query, 90.0, RatePattern::Constant(1.0));
            Scenario::builder("q2-straggler", query)
                .describe(
                    "Q2 with node 3 ramping down to 25% capacity over 2 minutes, holding, \
                     then restoring: stragglers inflate latency until strategies shed load",
                )
                .homogeneous_cluster(10, 3.0)
                .workload(workload)
                .duration_secs(420.0)
                .faults(FaultPlan::straggler_ramp(
                    NodeId::new(3),
                    60.0,
                    120.0,
                    120.0,
                    0.25,
                    4,
                )?)
                .default_strategies(runtime_rld_config())
                .build()
        }
        "q1-flap" => {
            let query = Query::q1_stock_monitoring();
            Scenario::builder("q1-flap", query)
                .describe(
                    "Q1 with node 2 flapping (seed-derived crash/recover intervals): \
                     repeated failover stresses migration bookkeeping",
                )
                .homogeneous_cluster(4, 3.0)
                .workload(StockWorkload::default_config())
                .duration_secs(300.0)
                .faults(FaultPlan::flapping(
                    SCENARIO_SEED,
                    NodeId::new(2),
                    30.0,
                    270.0,
                    50.0,
                    20.0,
                    RecoverySemantic::Replay,
                )?)
                .default_strategies(RldConfig::default().with_uncertainty(3))
                .build()
        }
        other => Err(RldError::NotFound(format!(
            "scenario '{other}' (known: {})",
            builtin_names().join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_cluster_workload_and_strategies() {
        let q = Query::q1_stock_monitoring();
        assert!(Scenario::builder("empty", q.clone()).build().is_err());
        assert!(Scenario::builder("no-workload", q.clone())
            .homogeneous_cluster(4, 3.0)
            .strategy(StrategySpec::Rod)
            .build()
            .is_err());
        assert!(Scenario::builder("no-strategy", q)
            .homogeneous_cluster(4, 3.0)
            .workload(StockWorkload::default_config())
            .build()
            .is_err());
    }

    #[test]
    fn builtin_names_all_resolve() {
        for name in builtin_names() {
            let s = builtin(name).unwrap();
            assert_eq!(s.name(), name);
            assert!(!s.strategies().is_empty());
            assert!(!s.description().is_empty());
        }
        assert!(builtin("no-such-scenario").is_err());
    }

    #[test]
    fn fault_builtins_carry_fault_plans_and_others_do_not() {
        for name in fault_scenario_names() {
            let s = builtin(name).unwrap();
            assert!(
                !s.fault_plan().is_empty(),
                "{name} must schedule fault events"
            );
            assert!(builtin_names().contains(&name));
        }
        assert!(builtin("q1-stock").unwrap().fault_plan().is_empty());
        // Crash scenarios actually crash; the straggler only degrades.
        assert!(builtin("q1-node-crash").unwrap().fault_plan().num_crashes() == 1);
        assert!(builtin("q1-flap").unwrap().fault_plan().num_crashes() >= 1);
        assert_eq!(
            builtin("q2-straggler").unwrap().fault_plan().num_crashes(),
            0
        );
    }

    #[test]
    fn builder_rejects_fault_plans_naming_missing_nodes() {
        let q = Query::q1_stock_monitoring();
        let result = Scenario::builder("bad-faults", q)
            .homogeneous_cluster(2, 3.0)
            .workload(StockWorkload::default_config())
            .strategy(StrategySpec::Rod)
            .faults(
                FaultPlan::node_crash(NodeId::new(9), 10.0, 20.0, RecoverySemantic::Lost).unwrap(),
            )
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn scenario_runs_every_strategy_or_reports_skips() {
        let q = Query::q1_stock_monitoring();
        let scenario = Scenario::builder("smoke", q)
            .homogeneous_cluster(4, 3.0)
            .workload(StockWorkload::default_config())
            .duration_secs(30.0)
            .default_strategies(RldConfig::default().with_uncertainty(3))
            .build()
            .unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.outcomes.len(), 4);
        // RLD always deploys on this comfortable cluster.
        let rld = report.metrics_for("RLD").expect("RLD ran");
        assert!(rld.tuples_arrived > 0);
        for o in &report.outcomes {
            assert!(o.metrics.is_some() || o.skipped.is_some());
        }
    }

    #[test]
    fn scenarios_run_unchanged_on_the_execute_backend() {
        let q = Query::q1_stock_monitoring();
        let scenario = Scenario::builder("exec-smoke", q)
            .homogeneous_cluster(4, 3.0)
            .workload(StockWorkload::default_config())
            .duration_secs(20.0)
            .strategy(StrategySpec::Rod)
            .strategy(StrategySpec::Dyn {
                rebalance_period_secs: 5.0,
            })
            .build()
            .unwrap();
        let report = scenario.run_on(Backend::Execute).unwrap();
        assert_eq!(report.backend, "execute");
        assert_eq!(report.outcomes.len(), 2);
        let rod = report.metrics_for("ROD").expect("ROD ran on the executor");
        assert!(rod.tuples_arrived > 0);
        assert_eq!(rod.tuples_processed, rod.tuples_arrived);
        assert_eq!(rod.tuples_lost, 0);
        // The simulator report of the same scenario has the same arrivals
        // (same seed, same arrival process) on the default backend.
        let sim_report = scenario.run().unwrap();
        assert_eq!(sim_report.backend, "simulate");
        assert_eq!(
            sim_report.metrics_for("ROD").unwrap().tuples_arrived,
            rod.tuples_arrived
        );
    }

    #[test]
    fn backend_lookup_by_name() {
        assert_eq!(Backend::by_name("simulate").unwrap(), Backend::Simulate);
        assert_eq!(Backend::by_name("sim").unwrap(), Backend::Simulate);
        assert_eq!(Backend::by_name("execute").unwrap(), Backend::Execute);
        assert_eq!(Backend::by_name("exec").unwrap(), Backend::Execute);
        assert_eq!(
            Backend::by_name("execute-columnar").unwrap(),
            Backend::ExecuteColumnar
        );
        assert_eq!(
            Backend::by_name("columnar").unwrap(),
            Backend::ExecuteColumnar
        );
        assert_eq!(Backend::by_name("col").unwrap(), Backend::ExecuteColumnar);
        assert!(Backend::by_name("quantum").is_err());
        assert_eq!(Backend::default(), Backend::Simulate);
        assert_eq!(Backend::Execute.name(), "execute");
        assert_eq!(Backend::ExecuteColumnar.name(), "execute-columnar");
    }

    #[test]
    fn scenarios_run_unchanged_on_the_columnar_backend() {
        let q = Query::q1_stock_monitoring();
        let scenario = Scenario::builder("columnar-smoke", q)
            .homogeneous_cluster(4, 3.0)
            .workload(StockWorkload::default_config())
            .duration_secs(20.0)
            .strategy(StrategySpec::Rod)
            .build()
            .unwrap();
        let report = scenario.run_on(Backend::ExecuteColumnar).unwrap();
        assert_eq!(report.backend, "execute-columnar");
        let rod = report.metrics_for("ROD").expect("ROD ran columnar");
        assert!(rod.tuples_arrived > 0);
        assert_eq!(rod.tuples_processed, rod.tuples_arrived);
        assert_eq!(rod.tuples_lost, 0);
        // Same arrival process as the simulator per seed.
        let sim_report = scenario.run().unwrap();
        assert_eq!(
            sim_report.metrics_for("ROD").unwrap().tuples_arrived,
            rod.tuples_arrived
        );
    }

    #[test]
    fn infeasible_strategies_are_skipped_not_fatal() {
        let q = Query::q1_stock_monitoring();
        // A cluster too tiny for any placement to fit the estimate loads.
        let cluster = Cluster::homogeneous(2, 1e-9).unwrap();
        let scenario = Scenario::builder("tiny", q)
            .cluster(cluster)
            .workload(StockWorkload::default_config())
            .duration_secs(10.0)
            .strategy(StrategySpec::Rod)
            .build()
            .unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.outcomes[0].skipped.is_some());
        assert!(report.metrics_for("ROD").is_none());
    }
}
