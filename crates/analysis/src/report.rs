//! The machine-readable `ANALYSIS.json` report and its text rendering.
//!
//! The auditor is dependency-free, so it carries its own ~60-line JSON
//! emitter (deterministic: object keys in insertion order, files in sorted
//! path order) rather than pulling in the workspace's serde stub or the
//! bench harness's parser.

use crate::rules::{Diagnostic, RuleId, Waiver};
use std::fmt::Write as _;

/// The aggregate result of auditing a workspace tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned, in sorted repo-relative path order.
    pub files_scanned: Vec<String>,
    /// Total tokens scanned (a cheap proxy for coverage).
    pub tokens_scanned: usize,
    /// All surviving diagnostics, in (path, line, rule) order.
    pub diagnostics: Vec<Diagnostic>,
    /// All waivers found, in (path, line) order.
    pub waivers: Vec<Waiver>,
}

impl Report {
    /// Whether the tree is clean (no diagnostics).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics for one rule.
    pub fn count(&self, rule: RuleId) -> usize {
        self.diagnostics.iter().filter(|d| d.rule == rule).count()
    }

    /// Waivers for one rule.
    pub fn waiver_count(&self, rule: RuleId) -> usize {
        self.waivers.iter().filter(|w| w.rule == rule).count()
    }

    /// Render the human-readable summary printed by `check`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "error[{}]: {}\n  --> {}:{}\n  help: {}",
                d.rule.code(),
                d.message,
                d.path,
                d.line,
                d.help
            );
        }
        let _ = writeln!(
            out,
            "rld-analysis: {} files, {} tokens scanned",
            self.files_scanned.len(),
            self.tokens_scanned
        );
        for rule in RuleId::ALL {
            let _ = writeln!(
                out,
                "  {}: {} — {} violation(s), {} waiver(s)",
                rule.code(),
                rule.summary(),
                self.count(rule),
                self.waiver_count(rule)
            );
        }
        let _ = writeln!(
            out,
            "{}",
            if self.is_clean() {
                "clean: all invariants hold"
            } else {
                "FAILED: invariant violations found"
            }
        );
        out
    }

    /// Render the `ANALYSIS.json` document.
    pub fn render_json(&self) -> String {
        let mut rules = Vec::new();
        for rule in RuleId::ALL {
            rules.push(Json::Obj(vec![
                ("id".into(), Json::Str(rule.code().into())),
                ("summary".into(), Json::Str(rule.summary().into())),
                ("violations".into(), Json::Num(self.count(rule) as f64)),
                ("waivers".into(), Json::Num(self.waiver_count(rule) as f64)),
            ]));
        }
        let diags = self
            .diagnostics
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("rule".into(), Json::Str(d.rule.code().into())),
                    ("file".into(), Json::Str(d.path.clone())),
                    ("line".into(), Json::Num(d.line as f64)),
                    ("message".into(), Json::Str(d.message.clone())),
                    ("help".into(), Json::Str(d.help.clone())),
                ])
            })
            .collect();
        let waivers = self
            .waivers
            .iter()
            .map(|w| {
                Json::Obj(vec![
                    ("rule".into(), Json::Str(w.rule.code().into())),
                    ("file".into(), Json::Str(w.path.clone())),
                    ("line".into(), Json::Num(w.line as f64)),
                    ("reason".into(), Json::Str(w.reason.clone())),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("tool".into(), Json::Str("rld-analysis".into())),
            (
                "files_scanned".into(),
                Json::Num(self.files_scanned.len() as f64),
            ),
            (
                "tokens_scanned".into(),
                Json::Num(self.tokens_scanned as f64),
            ),
            ("clean".into(), Json::Bool(self.is_clean())),
            ("rules".into(), Json::Arr(rules)),
            ("diagnostics".into(), Json::Arr(diags)),
            ("waivers".into(), Json::Arr(waivers)),
            (
                "files".into(),
                Json::Arr(
                    self.files_scanned
                        .iter()
                        .map(|f| Json::Str(f.clone()))
                        .collect(),
                ),
            ),
        ]);
        let mut s = String::new();
        doc.write(&mut s, 0);
        s.push('\n');
        s
    }
}

/// Minimal JSON value for report emission.
enum Json {
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{}", "  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                let _ = write!(out, "\n{}]", "  ".repeat(indent));
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{}", "  ".repeat(indent + 1));
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                let _ = write!(out, "\n{}}}", "  ".repeat(indent));
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_renders() {
        let r = Report {
            files_scanned: vec!["crates/common/src/lib.rs".into()],
            tokens_scanned: 100,
            ..Report::default()
        };
        assert!(r.is_clean());
        let json = r.render_json();
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"files_scanned\": 1"));
        let text = r.render_text();
        assert!(text.contains("clean: all invariants hold"));
    }

    #[test]
    fn diagnostics_render_with_spans() {
        let r = Report {
            files_scanned: vec!["x.rs".into()],
            tokens_scanned: 5,
            diagnostics: vec![Diagnostic {
                rule: RuleId::U1,
                path: "x.rs".into(),
                line: 3,
                message: "`unsafe` outside the containment boundary".into(),
                help: "contain it".into(),
            }],
            waivers: vec![Waiver {
                rule: RuleId::D2,
                path: "x.rs".into(),
                line: 9,
                reason: "solver wall \"clock\"".into(),
            }],
        };
        assert!(!r.is_clean());
        let text = r.render_text();
        assert!(text.contains("error[U1]"));
        assert!(text.contains("x.rs:3"));
        let json = r.render_json();
        assert!(json.contains("\"clean\": false"));
        // Quotes in reasons are escaped.
        assert!(json.contains("solver wall \\\"clock\\\""));
    }
}
