//! The invariant rules and the per-file analysis driver.
//!
//! Four rules, each a named, waivable diagnostic with a `file:line` span:
//!
//! * **D1** — no `HashMap`/`HashSet` *iteration* in result-producing crates.
//!   Hash iteration order is seeded per process, so a single `.iter()` on a
//!   result path silently breaks the bit-determinism the three backends and
//!   every shard count are oracled against. Lookups (`get`/`insert`/
//!   `contains`) are fine; iteration must go through a `BTreeMap`, a sorted
//!   projection (`rld_common::collections::sorted_pairs`), or carry a waiver.
//! * **D2** — `Instant::now`/`SystemTime` only inside the allowlisted timing
//!   surface (`rld-exec`, `rld-bench`: the `StageTimings`/`ExecReport`
//!   wall-clock paths). Anywhere else, wall time could feed tuple results.
//! * **U1** — `unsafe` only in `crates/exec/src/columnar/ring.rs`, and every
//!   `unsafe` there must carry a `// SAFETY:` justification.
//! * **L1** — no `.lock()` guard combined with a second `.lock()` or a
//!   channel/ring transfer (`send`/`recv`/`try_push`/...) in the same
//!   statement chain — the shape every future deadlock here would take.
//!
//! A diagnostic is waived by `// rld-allow(<rule>): <reason>` on the same
//! line or the line directly above; waivers are counted in the report so
//! they stay visible instead of becoming invisible tribal knowledge.
//!
//! The scanner is lexical (see [`crate::lexer`]): it tracks let-bindings,
//! type ascriptions and struct fields to learn which names are hash
//! containers, and it skips `#[cfg(test)]` items for D1/D2/L1 (test-only
//! wall-clock or iteration cannot reach a result path). This is a
//! heuristic, not a type checker — the waiver mechanism is the escape
//! hatch for the false positives a lexical pass cannot avoid.

use crate::lexer::{lex, Lexed, Token};

/// The result-producing crates D1 applies to: anything whose output feeds
/// tuple results, metrics folds, placement or plan enumeration.
pub const RESULT_CRATES: &[&str] = &[
    "rld-common",
    "rld-engine",
    "rld-exec",
    "rld-logical",
    "rld-physical",
    "rld-paramspace",
    "rld-workloads",
];

/// Crates whose wall-clock reads are allowlisted for D2 (the
/// `StageTimings`/`ExecReport` timing surface and the bench harness).
pub const TIMING_CRATES: &[&str] = &["rld-exec", "rld-bench"];

/// The single file allowed to contain `unsafe` (U1).
pub const UNSAFE_BOUNDARY: &str = "crates/exec/src/columnar/ring.rs";

/// Map-iteration methods D1 flags on hash containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Channel/ring transfer methods L1 refuses to combine with a held lock.
const CHANNEL_METHODS: &[&str] = &[
    "send",
    "recv",
    "try_send",
    "try_recv",
    "recv_timeout",
    "try_push",
    "push_blocking",
    "try_pop",
];

/// The four rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Hash-order nondeterminism on a result path.
    D1,
    /// Wall clock outside the timing surface.
    D2,
    /// Unsafe containment.
    U1,
    /// Lock discipline.
    L1,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 4] = [RuleId::D1, RuleId::D2, RuleId::U1, RuleId::L1];

    /// The rule's short identifier, as used in `rld-allow(...)`.
    pub fn code(&self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::U1 => "U1",
            RuleId::L1 => "L1",
        }
    }

    /// One-line description for reports.
    pub fn summary(&self) -> &'static str {
        match self {
            RuleId::D1 => "no HashMap/HashSet iteration in result-producing crates",
            RuleId::D2 => "wall clock (Instant::now/SystemTime) only in the timing surface",
            RuleId::U1 => "unsafe only in the SPSC ring, with SAFETY comments",
            RuleId::L1 => "no lock guard across a second lock or a channel transfer",
        }
    }

    fn parse(code: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code() == code)
    }
}

/// One finding: a named rule violated at a `file:line` span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

/// One `// rld-allow(<rule>): <reason>` waiver that suppressed (or could
/// suppress) a diagnostic.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: RuleId,
    /// Repo-relative path.
    pub path: String,
    /// 1-indexed line the waiver comment sits on.
    pub line: usize,
    /// The stated reason (everything after the colon).
    pub reason: String,
}

/// Everything the analysis learned about one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Diagnostics that survived waiver filtering.
    pub diagnostics: Vec<Diagnostic>,
    /// Waivers found in the file (whether or not they fired).
    pub waivers: Vec<Waiver>,
    /// Number of tokens scanned.
    pub tokens: usize,
}

/// Analyze one source file. `path` is the repo-relative path (used for the
/// U1 boundary and in spans), `crate_name` the owning package (used for the
/// D1/D2 crate scoping).
pub fn analyze_source(path: &str, crate_name: &str, src: &str) -> FileReport {
    let lexed = lex(src);
    let in_test = test_regions(&lexed.tokens);
    let waivers = collect_waivers(path, &lexed);
    let mut diags = Vec::new();

    if RESULT_CRATES.contains(&crate_name) {
        rule_d1(path, &lexed, &in_test, &mut diags);
    }
    if !TIMING_CRATES.contains(&crate_name) {
        rule_d2(path, &lexed, &in_test, &mut diags);
    }
    rule_u1(path, &lexed, &mut diags);
    rule_l1(path, &lexed, &in_test, &mut diags);

    // Apply waivers: a diagnostic is suppressed by a matching-rule waiver on
    // its own line or the line directly above.
    diags.retain(|d| {
        !waivers
            .iter()
            .any(|w| w.rule == d.rule && (w.line == d.line || w.line + 1 == d.line))
    });
    diags.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));

    FileReport {
        diagnostics: diags,
        waivers,
        tokens: lexed.tokens.len(),
    }
}

/// Parse `rld-allow(<rule>): <reason>` out of every comment.
fn collect_waivers(path: &str, lexed: &Lexed) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(at) = c.text.find("rld-allow(") else {
            continue;
        };
        let rest = &c.text[at + "rld-allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let Some(rule) = RuleId::parse(rest[..close].trim()) else {
            continue;
        };
        let reason = rest[close + 1..].trim_start_matches(':').trim().to_string();
        out.push(Waiver {
            rule,
            path: path.to_string(),
            line: c.line,
            reason,
        });
    }
    out
}

/// Mark the token ranges belonging to `#[cfg(test)]` items (and, at the
/// caller's discretion via crate naming, whole test packages). Returns one
/// flag per token.
fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip the attribute itself (7 tokens: # [ cfg ( test ) ]),
            // then any further attributes, then mark the following item.
            let mut j = i + 7;
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attribute(tokens, j);
            }
            let end = item_end(tokens, j);
            for flag in in_test.iter_mut().take(end).skip(i) {
                *flag = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    in_test
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    tokens.len() > i + 6
        && tokens[i].is_punct('#')
        && tokens[i + 1].is_punct('[')
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct('(')
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_punct(')')
        && tokens[i + 6].is_punct(']')
}

/// Skip a `#[...]` attribute starting at `i` (at the `#`); returns the index
/// just past its closing `]`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// The index just past the end of the item starting at `i`: either the
/// matching `}` of its first top-level brace, or the first top-level `;`.
fn item_end(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut nest = 0usize;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            nest = nest.saturating_sub(1);
        } else if t.is_punct('{') && nest == 0 {
            // Body: consume to the matching close brace.
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                j += 1;
            }
            return j;
        } else if t.is_punct(';') && nest == 0 {
            return j + 1;
        }
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------------
// D1 — hash-container iteration
// ---------------------------------------------------------------------------

fn rule_d1(path: &str, lexed: &Lexed, in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    let tokens = &lexed.tokens;
    let hash_names = collect_hash_names(tokens);
    if hash_names.is_empty() {
        return;
    }
    let mut i = 0usize;
    while i < tokens.len() {
        if in_test[i] {
            i += 1;
            continue;
        }
        let Some(name) = tokens[i].ident() else {
            i += 1;
            continue;
        };
        if !hash_names.iter().any(|n| n == name) {
            i += 1;
            continue;
        }
        // `map.iter()` / `self.map.keys()` / ... — a flagged method call.
        if i + 2 < tokens.len() && tokens[i + 1].is_punct('.') {
            if let Some(m) = tokens[i + 2].ident() {
                if ITER_METHODS.contains(&m) && tokens.get(i + 3).is_some_and(|t| t.is_punct('(')) {
                    diags.push(d1_diag(path, tokens[i + 2].line, name, m));
                    i += 3;
                    continue;
                }
            }
        }
        // `for pat in [&][mut] [self.] map {` — direct iteration.
        if directly_iterated(tokens, i) {
            diags.push(d1_diag(path, tokens[i].line, name, "for … in"));
        }
        i += 1;
    }
}

fn d1_diag(path: &str, line: usize, name: &str, how: &str) -> Diagnostic {
    Diagnostic {
        rule: RuleId::D1,
        path: path.to_string(),
        line,
        message: format!("hash container `{name}` is iterated (`{how}`) on a result path"),
        help: "hash iteration order is nondeterministic; use a BTreeMap, project through \
               rld_common::collections::sorted_pairs, or waive with // rld-allow(D1): <reason>"
            .to_string(),
    }
}

/// Names lexically bound to a `HashMap`/`HashSet`: type-ascribed fields and
/// params (`name: HashMap<...>`) and let-bindings whose initializer mentions
/// a hash constructor (`let name = HashMap::new()`).
fn collect_hash_names(tokens: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut bind = |n: &str| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    for i in 0..tokens.len() {
        let Some(id) = tokens[i].ident() else {
            continue;
        };
        if id == "HashMap" || id == "HashSet" {
            // Walk back over a `path::` prefix (`std :: collections ::`).
            let mut j = i;
            while j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
                j -= 2;
                if j >= 1 && tokens[j - 1].ident().is_some() {
                    j -= 1;
                } else {
                    break;
                }
            }
            // Skip reference sigils (`& mut`) between the colon and the type
            // so `name: &HashMap<...>` params bind too.
            while j >= 1 && (tokens[j - 1].is_punct('&') || tokens[j - 1].is_ident("mut")) {
                j -= 1;
            }
            // `name : [&mut] [path::]HashMap` — ascription (field, param, let).
            if j >= 2 && tokens[j - 1].is_punct(':') && !tokens[j - 2].is_punct(':') {
                if let Some(n) = tokens[j - 2].ident() {
                    bind(n);
                }
            }
        } else if id == "let" {
            // `let [mut] name [: T] = <rhs containing HashMap/HashSet> ;`
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(n) = tokens.get(j).and_then(|t| t.ident()) else {
                continue;
            };
            // Find the `=` (skipping a type ascription), then scan the
            // initializer up to the terminating `;` at nesting zero.
            let mut k = j + 1;
            let mut nest = 0usize;
            let mut seen_eq = false;
            while let Some(t) = tokens.get(k) {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    nest += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if nest == 0 {
                        break;
                    }
                    nest -= 1;
                } else if t.is_punct(';') && nest == 0 {
                    break;
                } else if t.is_punct('=') && nest == 0 {
                    seen_eq = true;
                } else if seen_eq && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
                    bind(n);
                    break;
                }
                k += 1;
            }
        }
    }
    names
}

/// Whether the identifier at `i` is the subject of a `for … in` loop:
/// `for pat in [&][mut] [self .] <ident> {`.
fn directly_iterated(tokens: &[Token], i: usize) -> bool {
    if !tokens.get(i + 1).is_some_and(|t| t.is_punct('{')) {
        return false;
    }
    let mut j = i;
    // Step back over `self .` and `& mut`.
    if j >= 2 && tokens[j - 1].is_punct('.') && tokens[j - 2].is_ident("self") {
        j -= 2;
    }
    while j >= 1 && (tokens[j - 1].is_punct('&') || tokens[j - 1].is_ident("mut")) {
        j -= 1;
    }
    j >= 1 && tokens[j - 1].is_ident("in")
}

// ---------------------------------------------------------------------------
// D2 — wall clock outside the timing surface
// ---------------------------------------------------------------------------

fn rule_d2(path: &str, lexed: &Lexed, in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        let flagged = if tokens[i].is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            Some("Instant::now()")
        } else if tokens[i].is_ident("SystemTime") {
            Some("SystemTime")
        } else {
            None
        };
        if let Some(what) = flagged {
            diags.push(Diagnostic {
                rule: RuleId::D2,
                path: path.to_string(),
                line: tokens[i].line,
                message: format!("wall-clock read (`{what}`) outside the timing surface"),
                help: "only rld-exec/rld-bench may read the wall clock (StageTimings/ExecReport); \
                       anywhere else it can leak into tuple results — derive times from the \
                       simulated clock, or waive with // rld-allow(D2): <reason>"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// U1 — unsafe containment
// ---------------------------------------------------------------------------

fn rule_u1(path: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    for t in &lexed.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        if path != UNSAFE_BOUNDARY {
            diags.push(Diagnostic {
                rule: RuleId::U1,
                path: path.to_string(),
                line: t.line,
                message: "`unsafe` outside the containment boundary".to_string(),
                help: format!(
                    "all unsafe lives in {UNSAFE_BOUNDARY} (the SPSC ring); route shared-memory \
                     code through it, or waive with // rld-allow(U1): <reason>"
                ),
            });
        } else if !has_safety_comment(lexed, t.line) {
            diags.push(Diagnostic {
                rule: RuleId::U1,
                path: path.to_string(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` justification".to_string(),
                help: "add a `// SAFETY:` comment directly above stating the invariant that \
                       makes this sound"
                    .to_string(),
            });
        }
    }
}

/// Whether an `unsafe` on `line` is justified: a comment containing
/// `SAFETY:` on the same line or in the contiguous comment block directly
/// above it.
fn has_safety_comment(lexed: &Lexed, line: usize) -> bool {
    let comment_at = |l: usize| lexed.comments.iter().filter(move |c| c.line == l);
    if comment_at(line).any(|c| c.text.contains("SAFETY:")) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l > 0 {
        let mut any = false;
        for c in comment_at(l) {
            any = true;
            if c.text.contains("SAFETY:") {
                return true;
            }
        }
        if !any {
            return false;
        }
        l -= 1;
    }
    false
}

// ---------------------------------------------------------------------------
// L1 — lock discipline
// ---------------------------------------------------------------------------

fn rule_l1(path: &str, lexed: &Lexed, in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    let tokens = &lexed.tokens;
    let mut seg_start = 0usize;
    let mut i = 0usize;
    while i <= tokens.len() {
        let boundary = i == tokens.len()
            || tokens[i].is_punct(';')
            || tokens[i].is_punct('{')
            || tokens[i].is_punct('}');
        if boundary {
            check_l1_segment(path, tokens, in_test, seg_start, i, diags);
            seg_start = i + 1;
        }
        i += 1;
    }
}

/// Scan one statement chain (tokens in `[start, end)`) for a lock guard
/// combined with a second lock or a channel transfer.
fn check_l1_segment(
    path: &str,
    tokens: &[Token],
    in_test: &[bool],
    start: usize,
    end: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let mut locks: Vec<usize> = Vec::new();
    let mut channels: Vec<(usize, &str)> = Vec::new();
    let mut j = start;
    while j + 2 < end.min(tokens.len()) {
        if tokens[j].is_punct('.') && tokens[j + 2].is_punct('(') {
            if let Some(m) = tokens[j + 1].ident() {
                if m == "lock" {
                    locks.push(j + 1);
                } else if CHANNEL_METHODS.contains(&m) {
                    channels.push((j + 1, m));
                }
            }
        }
        j += 1;
    }
    if locks.is_empty() || in_test.get(locks[0]).copied().unwrap_or(false) {
        return;
    }
    if locks.len() >= 2 {
        let at = locks[1];
        diags.push(Diagnostic {
            rule: RuleId::L1,
            path: path.to_string(),
            line: tokens[at].line,
            message: "two `.lock()` guards acquired in the same statement chain".to_string(),
            help: "nested guards are the deadlock shape; split the statement so the first \
                   guard drops before the second lock, or waive with // rld-allow(L1): <reason>"
                .to_string(),
        });
    }
    if let Some((at, m)) = channels.first() {
        let at = (*at).max(locks[0]);
        diags.push(Diagnostic {
            rule: RuleId::L1,
            path: path.to_string(),
            line: tokens[at].line,
            message: format!("`.lock()` guard held across a channel transfer (`.{m}()`)"),
            help: "a blocked transfer with a held guard deadlocks the lock's other users; \
                   move the transfer out of the locked statement, or waive with \
                   // rld-allow(L1): <reason>"
                .to_string(),
        });
    }
}
