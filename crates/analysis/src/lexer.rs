//! A lightweight Rust lexer.
//!
//! The auditor needs just enough lexical structure to scan token trees
//! reliably: identifiers and keywords, punctuation, balanced delimiters, and
//! — crucially — *correct skipping* of the things that would otherwise
//! produce false matches: string/char/byte literals (including raw strings
//! and escapes), lifetimes, and comments. Comments are not discarded; they
//! are collected per line so the rule engine can find `// rld-allow(...)`
//! waivers and `// SAFETY:` justifications.
//!
//! This is intentionally not a full Rust lexer (no float-vs-range
//! disambiguation, no shebang handling); it only has to be sound on the
//! workspace's own sources and on the lint fixtures.

/// One lexical token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-indexed line the token starts on.
    pub line: usize,
}

/// Token kinds the rule engine distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `for`, ...).
    Ident(String),
    /// A lifetime (`'a`, `'static`) — kept distinct from char literals.
    Lifetime(String),
    /// Any literal: string, raw string, byte string, char, byte, or number.
    /// The payload is dropped; rules never look inside literals.
    Literal,
    /// A single punctuation character (`.`, `;`, `:`, `=`, ...), including
    /// the delimiters `( ) [ ] { }`.
    Punct(char),
}

impl Token {
    /// Whether this token is the given identifier.
    pub fn is_ident(&self, text: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s == text)
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A comment with its 1-indexed starting line. Block comments spanning
/// multiple lines are recorded at the line they start on and additionally at
/// every line they cover, so line-based waiver lookup stays simple.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed line this comment (segment) sits on.
    pub line: usize,
    /// The comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Comment-free token stream.
    pub tokens: Vec<Token>,
    /// All comments, one entry per (line, text) pair.
    pub comments: Vec<Comment>,
}

/// Lex Rust source text. Never fails: unterminated constructs consume to the
/// end of input (the auditor scans the workspace's own compiling sources, so
/// this is a graceful-degradation path, not an expected one).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, line: usize) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'r' if self.raw_string_ahead(0) => self.raw_string(0),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal();
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal();
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string(0);
                }
                '\'' => self.lifetime_or_char(),
                c if c.is_ascii_digit() => self.number_literal(),
                c if c == '_' || c.is_alphanumeric() => self.ident(),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text: text.trim_start_matches(['/', '!']).trim().to_string(),
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        // Record the comment on every line it covers so waiver lookup by
        // line works whichever line of the block carries the marker.
        for (i, seg) in text.split('\n').enumerate() {
            self.out.comments.push(Comment {
                line: start_line + i,
                text: seg.trim().trim_start_matches(['*', '!']).trim().to_string(),
            });
        }
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, line);
    }

    /// Whether `r`/`r#...#` at `pos + offset` starts a raw string.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset + 1; // past the `r`
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self, _offset: usize) {
        let line = self.line;
        self.bump(); // `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Literal, line);
    }

    fn char_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, line);
    }

    /// `'` starts either a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`, `'\''`). A quote followed by an identifier char that
    /// is *not* closed by a quote right after one char is a lifetime.
    fn lifetime_or_char(&mut self) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_char = matches!((next, after), (Some('\\'), _) | (Some(_), Some('\'')));
        if is_char {
            self.char_literal();
        } else {
            let line = self.line;
            self.bump(); // `'`
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime(name), line);
        }
    }

    fn number_literal(&mut self) {
        let line = self.line;
        while let Some(c) = self.peek(0) {
            // Consume digits, radix prefixes, underscores, type suffixes and
            // exponent signs; stop before `..` (range) and method dots.
            if c == '_'
                || c.is_ascii_alphanumeric()
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || ((c == '+' || c == '-')
                    && matches!(self.chars.get(self.pos.wrapping_sub(1)), Some('e' | 'E')))
            {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident(name), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let src = r##"let s = "unsafe { HashMap }"; let c = '\''; let b = b'{'; let q = '"';"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "c", "let", "b", "let", "q"]);
    }

    #[test]
    fn raw_strings_are_opaque() {
        let src = r####"let s = r#"Instant::now() " inside"#; let t = 1;"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Lifetime(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "// first\nlet x = 1; // trailing\n/* block\nspanning */\nlet y = 2;\n";
        let lexed = lex(src);
        assert!(lexed
            .comments
            .iter()
            .any(|c| c.line == 1 && c.text == "first"));
        assert!(lexed
            .comments
            .iter()
            .any(|c| c.line == 2 && c.text == "trailing"));
        assert!(lexed
            .comments
            .iter()
            .any(|c| c.line == 3 && c.text == "block"));
        assert!(lexed
            .comments
            .iter()
            .any(|c| c.line == 4 && c.text == "spanning"));
        // Tokens carry correct lines across the block comment.
        let y = lexed.tokens.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 5);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let z = 3;";
        assert_eq!(idents(src), vec!["let", "z"]);
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let src = "let a = 1.5e-3; let b = 0x_ff_u32; (0..10).sum::<i32>(); 4.0f64.sqrt();";
        let ids = idents(src);
        assert!(ids.contains(&"sum".to_string()));
        assert!(ids.contains(&"sqrt".to_string()));
    }
}
