//! The `rld-analysis` CLI.
//!
//! ```text
//! cargo run -p rld-analysis -- check [--root <dir>] [--json <path>] [--quiet]
//! cargo run -p rld-analysis -- rules
//! ```
//!
//! `check` audits the workspace and writes `ANALYSIS.json` at the root;
//! exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use rld_analysis::{Report, RuleId, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "rules" if cmd.is_none() => cmd = Some(args[i].clone()),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(v) => root = Some(PathBuf::from(v)),
                    None => return usage("--root needs a value"),
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(v) => json_path = Some(PathBuf::from(v)),
                    None => return usage("--json needs a value"),
                }
            }
            "--quiet" => quiet = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    match cmd.as_deref() {
        Some("rules") => {
            for rule in RuleId::ALL {
                println!("{}: {}", rule.code(), rule.summary());
            }
            ExitCode::SUCCESS
        }
        Some("check") => run_check(root, json_path, quiet),
        _ => usage("expected a command: `check` or `rules`"),
    }
}

fn run_check(root: Option<PathBuf>, json_path: Option<PathBuf>, quiet: bool) -> ExitCode {
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match Workspace::find_root(&cwd) {
                Some(r) => r,
                None => return usage("could not locate the workspace root; pass --root"),
            }
        }
    };
    let report: Report = match Workspace::discover(&root).and_then(|ws| ws.check()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rld-analysis: I/O error: {e}");
            return ExitCode::from(2);
        }
    };
    let json_path = json_path.unwrap_or_else(|| root.join("ANALYSIS.json"));
    if let Err(e) = std::fs::write(&json_path, report.render_json()) {
        eprintln!("rld-analysis: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    if !quiet {
        print!("{}", report.render_text());
        println!("report: {}", json_path.display());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "rld-analysis: {err}\n\nusage:\n  rld-analysis check [--root <dir>] [--json <path>] [--quiet]\n  rld-analysis rules"
    );
    ExitCode::from(2)
}
