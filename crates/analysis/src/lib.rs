//! # rld-analysis
//!
//! The workspace invariant auditor. The reproduction's headline correctness
//! property is **bit-determinism**: the simulator, the row executor and the
//! columnar backend — at every shard count — must produce identical traces
//! (the `columnar_oracle` differential tests). The rules that make that true
//! used to be tribal knowledge; this crate machine-checks them:
//!
//! * a self-contained Rust [`lexer`] and token-tree scanner (no external
//!   dependencies — the build environment is offline),
//! * four named, waivable [`rules`] with `file:line` spans — **D1** (no hash
//!   iteration on result paths), **D2** (wall clock only in the timing
//!   surface), **U1** (unsafe containment + `SAFETY:` comments), **L1**
//!   (lock discipline),
//! * `// rld-allow(<rule>): <reason>` inline waivers, counted in the
//!   [`report`],
//! * a machine-readable `ANALYSIS.json` report, and
//! * an exhaustive [`ringmodel`] checker for the SPSC ring's
//!   acquire/release protocol (run as a normal `#[test]`).
//!
//! Run it with `cargo run -p rld-analysis -- check` (exit 0 = clean tree;
//! CI gates on it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lexer;
pub mod report;
pub mod ringmodel;
pub mod rules;
pub mod workspace;

pub use report::Report;
pub use rules::{analyze_source, Diagnostic, FileReport, RuleId, Waiver};
pub use workspace::Workspace;
