//! Workspace discovery: find every first-party Rust source under the repo
//! root and attribute it to its owning crate.
//!
//! Scanned: `crates/**`, `tests/**`, `examples/**`. Skipped: `vendor/`
//! (offline stand-ins for external crates — not our invariant surface),
//! `target/`, dotdirs, and `tests/fixtures/` (the lint corpus is
//! *deliberately* in violation).

use crate::report::Report;
use crate::rules::analyze_source;
use std::io;
use std::path::{Path, PathBuf};

/// A discovered workspace tree rooted at the repository checkout.
#[derive(Debug)]
pub struct Workspace {
    root: PathBuf,
    /// Repo-relative source paths (forward slashes), sorted.
    files: Vec<String>,
}

impl Workspace {
    /// Discover the first-party sources under `root`.
    pub fn discover(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        for top in ["crates", "tests", "examples"] {
            let dir = root.join(top);
            if dir.is_dir() {
                walk(root, &dir, &mut files)?;
            }
        }
        files.sort();
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Locate the workspace root: walk upward from `start` looking for a
    /// directory that holds both a `Cargo.toml` and a `crates/` dir.
    pub fn find_root(start: &Path) -> Option<PathBuf> {
        let mut dir = Some(start);
        while let Some(d) = dir {
            if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
                return Some(d.to_path_buf());
            }
            dir = d.parent();
        }
        None
    }

    /// The repo-relative paths that will be audited.
    pub fn files(&self) -> &[String] {
        &self.files
    }

    /// Run every rule over every discovered file.
    pub fn check(&self) -> io::Result<Report> {
        let mut report = Report::default();
        for rel in &self.files {
            let src = std::fs::read_to_string(self.root.join(rel))?;
            let file_report = analyze_source(rel, &crate_of(rel), &src);
            report.tokens_scanned += file_report.tokens;
            report.diagnostics.extend(file_report.diagnostics);
            report.waivers.extend(file_report.waivers);
            report.files_scanned.push(rel.clone());
        }
        Ok(report)
    }
}

/// The owning package of a repo-relative path (`crates/common/...` →
/// `rld-common`; the `tests/` and `examples/` helper packages likewise).
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => match parts.next() {
            Some(name) => format!("rld-{name}"),
            None => "rld-unknown".to_string(),
        },
        Some("tests") => "rld-tests".to_string(),
        Some("examples") => "rld-examples".to_string(),
        _ => "rld-unknown".to_string(),
    }
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/common/src/lib.rs"), "rld-common");
        assert_eq!(crate_of("crates/exec/src/columnar/ring.rs"), "rld-exec");
        assert_eq!(crate_of("tests/tests/analysis.rs"), "rld-tests");
        assert_eq!(crate_of("examples/quickstart.rs"), "rld-examples");
    }

    #[test]
    fn discovers_this_workspace() {
        let root = Workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        let ws = Workspace::discover(&root).unwrap();
        // The auditor sees its own source, the exec ring, and the tests
        // package — and never the vendor stubs or the fixture corpus.
        assert!(ws
            .files()
            .iter()
            .any(|f| f == "crates/analysis/src/workspace.rs"));
        assert!(ws
            .files()
            .iter()
            .any(|f| f == "crates/exec/src/columnar/ring.rs"));
        assert!(!ws.files().iter().any(|f| f.starts_with("vendor/")));
        assert!(!ws.files().iter().any(|f| f.contains("fixtures/")));
        assert!(ws.files().len() > 60, "found {}", ws.files().len());
    }
}
