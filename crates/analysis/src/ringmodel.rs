//! An exhaustive model checker for the SPSC ring protocol of
//! `crates/exec/src/columnar/ring.rs`.
//!
//! `ring.rs` is the one unsafe file in the workspace, and its soundness
//! argument is a memory-ordering protocol: the producer owns `tail`, the
//! consumer owns `head`, each publishes its counter with `Release` after
//! touching a slot and reads the other's with `Acquire` before touching
//! one. This module re-states that protocol as an explicit state machine
//! and *exhaustively enumerates* every producer/consumer interleaving —
//! including stale reads the hardware is allowed to serve — checking that
//! no execution loses a value, duplicates one, or reads a slot it cannot
//! prove visible (a torn read / data race).
//!
//! # The memory model
//!
//! A loom-style abstraction of C11 release/acquire with per-location
//! coherence, specialised to single-writer atomics:
//!
//! * Each atomic location carries its full modification history. A load may
//!   return **any** value no older than the last one the loading thread has
//!   already seen on that location (per-location coherence) — staleness is a
//!   real branch in the search, not an afterthought.
//! * Every non-atomic slot access (read or write) is an *event*. Each thread
//!   accumulates a happens-before set of events it can prove ordered before
//!   its next step. A `Release` store snapshots the storer's set into the
//!   history entry; an `Acquire` load joins the entry's snapshot into the
//!   loader's set. A relaxed access transfers nothing.
//! * A slot access **races** if any earlier access to the same slot is not
//!   in the accessor's happens-before set. Racing accesses are undefined
//!   behaviour in the real code, so the checker reports them as violations
//!   rather than guessing values.
//!
//! The search is a bounded DFS over (schedule × staleness) choices with
//! visited-state deduplication, so spin loops (full ring, empty ring,
//! rereading a stale counter) fold into cycles instead of diverging. For
//! the default bound (4 messages through a capacity-2 ring) the correct
//! protocol's state graph has tens of thousands of transitions — all
//! explored, none violating. Weakening any ordering (the [`Protocol`]
//! flags) makes the checker produce a concrete interleaving trace of the
//! resulting lost/duplicated/torn slot, which is how we know it has teeth.

use std::collections::HashSet;

/// Which memory-ordering protocol the two threads follow. The default
/// ([`Protocol::correct`]) is exactly `ring.rs`; each flag weakens one
/// ordering edge so tests can prove the checker catches the bug.
#[derive(Debug, Clone, Copy)]
pub struct Protocol {
    /// Ring capacity (slots).
    pub capacity: usize,
    /// Messages pushed end-to-end through the ring.
    pub messages: usize,
    /// Producer reads `head` with `Acquire` (consumer's slot reads become
    /// visible before the slot is reused). Weakening this races the
    /// producer's overwrite against an in-flight consumer read.
    pub producer_acquires_head: bool,
    /// Consumer reads `tail` with `Acquire` (producer's slot write becomes
    /// visible before the value is popped). Weakening this tears the read.
    pub consumer_acquires_tail: bool,
    /// Producer stores `tail` with `Release`. Weakening this publishes the
    /// counter without publishing the slot write it covers.
    pub producer_releases_tail: bool,
    /// Consumer stores `head` with `Release`. Weakening this frees the slot
    /// without publishing the consumer's read of it.
    pub consumer_releases_head: bool,
    /// Store `tail` *before* writing the slot (a classic transposition bug;
    /// the correct protocol writes the slot first).
    pub publish_before_write: bool,
}

impl Protocol {
    /// The protocol `ring.rs` actually implements.
    pub fn correct(capacity: usize, messages: usize) -> Self {
        Protocol {
            capacity,
            messages,
            producer_acquires_head: true,
            consumer_acquires_tail: true,
            producer_releases_tail: true,
            consumer_releases_head: true,
            publish_before_write: false,
        }
    }
}

/// A protocol violation, with the interleaving that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A slot access raced an earlier access it could not prove ordered
    /// (includes torn reads of unpublished writes).
    Race {
        /// Slot index.
        slot: usize,
        /// Human-readable description of the two accesses.
        detail: String,
    },
    /// The consumer popped a value out of sequence (lost or reordered).
    WrongValue {
        /// Expected message number.
        expected: usize,
        /// Got this instead.
        got: usize,
    },
    /// A terminal state where not every message arrived (lost slots).
    Lost {
        /// How many messages arrived.
        delivered: usize,
    },
}

/// Statistics from one exhaustive exploration.
#[derive(Debug, Clone, Default)]
pub struct Exploration {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions (scheduling/staleness choices) explored — the
    /// "interleavings" count; every path through the state graph is covered.
    pub transitions: usize,
    /// Complete executions reached (both threads done).
    pub terminals: usize,
    /// The first violation found, if any, with a schedule trace.
    pub violation: Option<(Violation, Vec<String>)>,
}

/// Where a thread is in its protocol loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pc {
    /// About to load the peer counter (tail for consumer, head for producer).
    LoadPeer,
    /// Loaded; about to check full/empty and act.
    Act {
        /// The peer counter value this thread observed.
        observed: usize,
    },
    /// Producer only, `publish_before_write`: counter stored, slot write
    /// still pending.
    WriteAfterPublish,
    /// All messages pushed/popped.
    Done,
}

/// One entry in an atomic location's modification history.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StoreRecord {
    value: usize,
    /// Event ids released with this store (empty for relaxed stores).
    published: Vec<u32>,
}

/// One non-atomic slot access event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Access {
    id: u32,
    is_write: bool,
    /// Message number written (writes) or slot generation read (reads).
    msg: usize,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Slot {
    /// Every access to this slot so far, in program order of occurrence.
    accesses: Vec<Access>,
    /// Current value (message number), if ever written.
    value: Option<usize>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Thread {
    pc: Pc,
    /// Own counter (tail for producer, head for consumer) — single-writer,
    /// so the thread always knows its latest value.
    counter: usize,
    /// Next message number to push/pop.
    next_msg: usize,
    /// Coherence floor: index into the peer counter's history below which
    /// this thread can no longer read (it has already seen newer).
    peer_floor: usize,
    /// Happens-before knowledge: slot-access event ids proven ordered
    /// before this thread's next step.
    knows: Vec<u32>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    producer: Thread,
    consumer: Thread,
    /// Modification history of `tail` (index 0 = initial 0).
    tail_history: Vec<StoreRecord>,
    /// Modification history of `head`.
    head_history: Vec<StoreRecord>,
    slots: Vec<Slot>,
    next_event: u32,
}

impl State {
    fn initial(capacity: usize) -> State {
        let zero = StoreRecord {
            value: 0,
            published: Vec::new(),
        };
        let thread = Thread {
            pc: Pc::LoadPeer,
            counter: 0,
            next_msg: 0,
            peer_floor: 0,
            knows: Vec::new(),
        };
        State {
            producer: thread.clone(),
            consumer: thread,
            tail_history: vec![zero.clone()],
            head_history: vec![zero],
            slots: vec![
                Slot {
                    accesses: Vec::new(),
                    value: None,
                };
                capacity
            ],
            next_event: 0,
        }
    }
}

/// Outcome of advancing one thread by one step.
enum Step {
    /// New states to explore (one per staleness choice), each tagged with a
    /// trace label.
    Next(Vec<(State, String)>),
    /// The step completed the protocol violation check unsuccessfully.
    Bad(Violation),
}

/// Exhaustively explore every interleaving of the protocol. Stops at the
/// first violation (keeping its trace); otherwise visits the entire
/// reachable state graph.
pub fn explore(p: &Protocol) -> Exploration {
    assert!(p.capacity > 0 && p.messages > 0);
    let mut stats = Exploration::default();
    // Full states in the visited set (not hashes): a fingerprint collision
    // would silently prune a reachable interleaving, and an exhaustive
    // checker must not have a probabilistic soundness hole.
    let mut visited: HashSet<State> = HashSet::new();
    // DFS stack: (state, schedule trace so far).
    let mut stack: Vec<(State, Vec<String>)> = vec![(State::initial(p.capacity), Vec::new())];
    visited.insert(stack[0].0.clone());

    while let Some((state, trace)) = stack.pop() {
        stats.states += 1;
        let done = state.producer.pc == Pc::Done && state.consumer.pc == Pc::Done;
        if done {
            stats.terminals += 1;
            if state.consumer.next_msg < p.messages {
                stats.violation = Some((
                    Violation::Lost {
                        delivered: state.consumer.next_msg,
                    },
                    trace,
                ));
                return stats;
            }
            continue;
        }
        for is_producer in [true, false] {
            let thread = if is_producer {
                &state.producer
            } else {
                &state.consumer
            };
            if thread.pc == Pc::Done {
                continue;
            }
            stats.transitions += 1;
            let step = if is_producer {
                step_producer(p, &state)
            } else {
                step_consumer(p, &state)
            };
            match step {
                Step::Bad(v) => {
                    let mut t = trace.clone();
                    t.push(format!(
                        "{}: VIOLATION",
                        if is_producer { "producer" } else { "consumer" }
                    ));
                    stats.violation = Some((v, t));
                    return stats;
                }
                Step::Next(nexts) => {
                    for (next, label) in nexts {
                        if visited.insert(next.clone()) {
                            let mut t = trace.clone();
                            t.push(label);
                            stack.push((next, t));
                        }
                    }
                }
            }
        }
    }
    stats
}

/// Load from a single-writer atomic: every history index in
/// `[floor, len)` is a legal result. Returns (new_floor, value,
/// knowledge gained) triples.
fn load_choices(
    history: &[StoreRecord],
    floor: usize,
    acquire: bool,
) -> Vec<(usize, usize, Vec<u32>)> {
    (floor..history.len())
        .map(|i| {
            let gained = if acquire {
                history[i].published.clone()
            } else {
                Vec::new()
            };
            (i, history[i].value, gained)
        })
        .collect()
}

fn join(knows: &mut Vec<u32>, gained: &[u32]) {
    for id in gained {
        if !knows.contains(id) {
            knows.push(*id);
        }
    }
    knows.sort_unstable();
}

/// Access a slot, checking every prior access is in the accessor's
/// happens-before set. Returns the race detail on violation.
fn access_slot(
    slot: &mut Slot,
    knows: &mut Vec<u32>,
    id: u32,
    is_write: bool,
    msg: usize,
) -> Option<String> {
    for prior in &slot.accesses {
        // Two reads never race; any write pairing must be ordered.
        if (is_write || prior.is_write) && !knows.contains(&prior.id) {
            return Some(format!(
                "{} (event {}) races earlier {} of msg {} (event {})",
                if is_write { "write" } else { "read" },
                id,
                if prior.is_write { "write" } else { "read" },
                prior.msg,
                prior.id
            ));
        }
    }
    slot.accesses.push(Access { id, is_write, msg });
    if is_write {
        slot.value = Some(msg);
    }
    knows.push(id);
    knows.sort_unstable();
    None
}

fn step_producer(p: &Protocol, state: &State) -> Step {
    let t = &state.producer;
    match t.pc {
        Pc::LoadPeer => {
            // h = HEAD.load(acquire?) — branch on every coherent value.
            let mut nexts = Vec::new();
            for (idx, value, gained) in
                load_choices(&state.head_history, t.peer_floor, p.producer_acquires_head)
            {
                let mut s = state.clone();
                s.producer.peer_floor = idx;
                join(&mut s.producer.knows, &gained);
                s.producer.pc = Pc::Act { observed: value };
                nexts.push((s, format!("P: load head -> {value}")));
            }
            Step::Next(nexts)
        }
        Pc::Act { observed } => {
            if t.counter.wrapping_sub(observed) == p.capacity {
                // Full: spin back to the load. (Same state modulo pc, so the
                // visited set folds the spin into a cycle.)
                let mut s = state.clone();
                s.producer.pc = Pc::LoadPeer;
                return Step::Next(vec![(s, "P: full, spin".to_string())]);
            }
            let mut s = state.clone();
            let slot_idx = t.counter % p.capacity;
            let msg = t.next_msg;
            if p.publish_before_write {
                // BUG VARIANT: publish the counter first, write the slot after.
                store_tail(p, &mut s);
                s.producer.pc = Pc::WriteAfterPublish;
                return Step::Next(vec![(
                    s,
                    format!("P: publish tail before write (msg {msg})"),
                )]);
            }
            let id = s.next_event;
            s.next_event += 1;
            if let Some(detail) =
                access_slot(&mut s.slots[slot_idx], &mut s.producer.knows, id, true, msg)
            {
                return Step::Bad(Violation::Race {
                    slot: slot_idx,
                    detail,
                });
            }
            store_tail(p, &mut s);
            advance_producer(p, &mut s);
            Step::Next(vec![(
                s,
                format!("P: write slot {slot_idx} = {msg}, publish tail"),
            )])
        }
        Pc::WriteAfterPublish => {
            let mut s = state.clone();
            let slot_idx = t.counter % p.capacity;
            let msg = t.next_msg;
            let id = s.next_event;
            s.next_event += 1;
            if let Some(detail) =
                access_slot(&mut s.slots[slot_idx], &mut s.producer.knows, id, true, msg)
            {
                return Step::Bad(Violation::Race {
                    slot: slot_idx,
                    detail,
                });
            }
            advance_producer(p, &mut s);
            Step::Next(vec![(s, format!("P: late write slot {slot_idx} = {msg}"))])
        }
        Pc::Done => Step::Next(Vec::new()),
    }
}

/// Append the producer's (possibly already incremented) counter to the tail
/// history with release semantics per the protocol flags.
fn store_tail(p: &Protocol, s: &mut State) {
    let new_tail = s.producer.counter.wrapping_add(1);
    s.tail_history.push(StoreRecord {
        value: new_tail,
        published: if p.producer_releases_tail {
            s.producer.knows.clone()
        } else {
            Vec::new()
        },
    });
}

fn advance_producer(p: &Protocol, s: &mut State) {
    s.producer.counter = s.producer.counter.wrapping_add(1);
    s.producer.next_msg += 1;
    s.producer.pc = if s.producer.next_msg == p.messages {
        Pc::Done
    } else {
        Pc::LoadPeer
    };
}

fn step_consumer(p: &Protocol, state: &State) -> Step {
    let t = &state.consumer;
    match t.pc {
        Pc::LoadPeer => {
            let mut nexts = Vec::new();
            for (idx, value, gained) in
                load_choices(&state.tail_history, t.peer_floor, p.consumer_acquires_tail)
            {
                let mut s = state.clone();
                s.consumer.peer_floor = idx;
                join(&mut s.consumer.knows, &gained);
                s.consumer.pc = Pc::Act { observed: value };
                nexts.push((s, format!("C: load tail -> {value}")));
            }
            Step::Next(nexts)
        }
        Pc::Act { observed } => {
            if t.counter == observed {
                // Empty: spin back to the load.
                let mut s = state.clone();
                s.consumer.pc = Pc::LoadPeer;
                return Step::Next(vec![(s, "C: empty, spin".to_string())]);
            }
            let mut s = state.clone();
            let slot_idx = t.counter % p.capacity;
            let id = s.next_event;
            s.next_event += 1;
            let value = s.slots[slot_idx].value;
            if let Some(detail) = access_slot(
                &mut s.slots[slot_idx],
                &mut s.consumer.knows,
                id,
                false,
                value.unwrap_or(usize::MAX),
            ) {
                return Step::Bad(Violation::Race {
                    slot: slot_idx,
                    detail,
                });
            }
            // The read is ordered; now check the value is the next message.
            let expected = t.next_msg;
            match value {
                Some(v) if v == expected => {}
                v => {
                    return Step::Bad(Violation::WrongValue {
                        expected,
                        got: v.unwrap_or(usize::MAX),
                    })
                }
            }
            // HEAD.store(counter + 1, release?).
            let new_head = t.counter.wrapping_add(1);
            s.head_history.push(StoreRecord {
                value: new_head,
                published: if p.consumer_releases_head {
                    s.consumer.knows.clone()
                } else {
                    Vec::new()
                },
            });
            s.consumer.counter = new_head;
            s.consumer.next_msg += 1;
            s.consumer.pc = if s.consumer.next_msg == p.messages {
                Pc::Done
            } else {
                Pc::LoadPeer
            };
            Step::Next(vec![(
                s,
                format!("C: pop slot {slot_idx} = {expected}, publish head"),
            )])
        }
        Pc::WriteAfterPublish => unreachable!("consumer never publishes early"),
        Pc::Done => Step::Next(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_protocol_is_exhaustively_clean() {
        // Six messages through a capacity-2 ring: ~10.5k distinct states,
        // ~15k transitions, 1024 complete executions — all explored.
        let stats = explore(&Protocol::correct(2, 6));
        assert!(
            stats.violation.is_none(),
            "violation: {:?}",
            stats.violation
        );
        assert!(stats.terminals >= 1_000, "terminals: {}", stats.terminals);
        // The whole point: this is an *exhaustive* exploration, not a smoke
        // test. Thousands of interleavings for even this small bound.
        assert!(
            stats.transitions >= 10_000,
            "only {} transitions explored",
            stats.transitions
        );
    }

    #[test]
    fn correct_protocol_clean_at_other_bounds() {
        for (cap, msgs) in [(1, 3), (2, 3), (3, 4), (4, 3)] {
            let stats = explore(&Protocol::correct(cap, msgs));
            assert!(
                stats.violation.is_none(),
                "cap={cap} msgs={msgs}: {:?}",
                stats.violation
            );
            assert!(stats.terminals > 0);
        }
    }

    #[test]
    fn missing_consumer_acquire_is_caught_as_torn_read() {
        let p = Protocol {
            consumer_acquires_tail: false,
            ..Protocol::correct(2, 3)
        };
        let stats = explore(&p);
        let (v, trace) = stats.violation.expect("relaxed tail load must be caught");
        assert!(matches!(v, Violation::Race { .. }), "got {v:?}");
        assert!(!trace.is_empty());
    }

    #[test]
    fn missing_producer_release_is_caught() {
        let p = Protocol {
            producer_releases_tail: false,
            ..Protocol::correct(2, 3)
        };
        let stats = explore(&p);
        assert!(
            matches!(stats.violation, Some((Violation::Race { .. }, _))),
            "got {:?}",
            stats.violation
        );
    }

    #[test]
    fn missing_producer_acquire_races_slot_reuse() {
        // Without acquiring head, the producer cannot prove the consumer's
        // read of a slot finished before overwriting it.
        let p = Protocol {
            producer_acquires_head: false,
            ..Protocol::correct(1, 2)
        };
        let stats = explore(&p);
        assert!(
            matches!(stats.violation, Some((Violation::Race { .. }, _))),
            "got {:?}",
            stats.violation
        );
    }

    #[test]
    fn missing_consumer_release_races_slot_reuse() {
        let p = Protocol {
            consumer_releases_head: false,
            ..Protocol::correct(1, 2)
        };
        let stats = explore(&p);
        assert!(
            matches!(stats.violation, Some((Violation::Race { .. }, _))),
            "got {:?}",
            stats.violation
        );
    }

    #[test]
    fn publish_before_write_is_caught() {
        let p = Protocol {
            publish_before_write: true,
            ..Protocol::correct(2, 3)
        };
        let stats = explore(&p);
        let (v, _) = stats.violation.expect("early publish must be caught");
        assert!(
            matches!(v, Violation::Race { .. } | Violation::WrongValue { .. }),
            "got {v:?}"
        );
    }
}
