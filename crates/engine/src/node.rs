//! Simulated cluster nodes.

use crate::faults::RecoverySemantic;
use rld_common::NodeId;
use serde::{Deserialize, Serialize};

/// One simulated machine: a work server with a nominal processing capacity
/// (cost units per second), a FIFO backlog of queued work, and a dynamic
/// availability state (up / down / degraded) driven by the fault plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimNode {
    /// The node's identifier.
    pub id: NodeId,
    /// Nominal processing capacity in cost units per second.
    pub capacity: f64,
    /// Queued, not yet processed work in cost units.
    pub backlog: f64,
    /// Total query work processed so far.
    pub work_done: f64,
    /// Total overhead work (migrations, classification) processed so far.
    pub overhead_done: f64,
    /// Overhead work still queued (subset of `backlog`).
    overhead_pending: f64,
    /// Whether the node is currently up.
    up: bool,
    /// Straggler factor: fraction of nominal capacity currently delivered.
    capacity_factor: f64,
    /// Estimated driving tuples whose work is still queued on this node
    /// (fractional: a batch's tuples are attributed to nodes in proportion
    /// to the work each node does for the batch). This is what a crash with
    /// [`RecoverySemantic::Lost`] counts as lost.
    inflight_tuples: f64,
}

/// What a crash did to a node's queued state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CrashOutcome {
    /// Work (cost units) discarded by the crash (zero under replay).
    pub work_lost: f64,
    /// Estimated driving tuples discarded by the crash (zero under replay).
    pub tuples_lost: f64,
}

impl SimNode {
    /// Create an idle, healthy node.
    pub fn new(id: NodeId, capacity: f64) -> Self {
        assert!(capacity > 0.0, "node capacity must be positive");
        Self {
            id,
            capacity,
            backlog: 0.0,
            work_done: 0.0,
            overhead_done: 0.0,
            overhead_pending: 0.0,
            up: true,
            capacity_factor: 1.0,
            inflight_tuples: 0.0,
        }
    }

    /// Whether the node is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// The capacity the node currently delivers: nominal × degradation
    /// factor while up, zero while down.
    pub fn effective_capacity(&self) -> f64 {
        if self.up {
            self.capacity * self.capacity_factor
        } else {
            0.0
        }
    }

    /// The current straggler factor (1.0 = full nominal capacity).
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// Set the straggler factor (1.0 = full nominal capacity).
    pub fn set_capacity_factor(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "capacity factor must be positive and finite"
        );
        self.capacity_factor = factor;
    }

    /// Take the node down. Under [`RecoverySemantic::Lost`] the queued
    /// backlog (and the tuples it carried) is discarded and reported; under
    /// [`RecoverySemantic::Replay`] it survives and will be processed after
    /// recovery.
    pub fn crash(&mut self, semantic: RecoverySemantic) -> CrashOutcome {
        self.up = false;
        match semantic {
            RecoverySemantic::Lost => {
                let outcome = CrashOutcome {
                    work_lost: self.backlog,
                    tuples_lost: self.inflight_tuples,
                };
                self.backlog = 0.0;
                self.overhead_pending = 0.0;
                self.inflight_tuples = 0.0;
                outcome
            }
            RecoverySemantic::Replay => CrashOutcome::default(),
        }
    }

    /// Bring the node back up (at whatever degradation factor it last had).
    pub fn recover(&mut self) {
        self.up = true;
    }

    /// Estimated driving tuples whose work is still queued here.
    pub fn inflight_tuples(&self) -> f64 {
        self.inflight_tuples
    }

    /// Enqueue query-processing work (cost units) carrying an estimated
    /// `tuples` driving tuples (fractional share of a batch).
    pub fn enqueue_work_with_tuples(&mut self, work: f64, tuples: f64) {
        debug_assert!(work >= 0.0 && tuples >= 0.0);
        self.backlog += work.max(0.0);
        self.inflight_tuples += tuples.max(0.0);
    }

    /// Enqueue query-processing work (cost units).
    pub fn enqueue_work(&mut self, work: f64) {
        self.enqueue_work_with_tuples(work, 0.0);
    }

    /// Enqueue overhead work (migration state transfer, plan classification).
    pub fn enqueue_overhead(&mut self, work: f64) {
        debug_assert!(work >= 0.0);
        let w = work.max(0.0);
        self.backlog += w;
        self.overhead_pending += w;
    }

    /// The queueing delay (seconds) a new arrival would currently experience
    /// before its own work starts being served. Infinite while the node is
    /// down.
    pub fn queueing_delay_secs(&self) -> f64 {
        let capacity = self.effective_capacity();
        if capacity <= 0.0 {
            return f64::INFINITY;
        }
        self.backlog / capacity
    }

    /// Time (seconds) this node needs to process `work` cost units once it
    /// reaches the head of the queue. Infinite while the node is down.
    pub fn service_time_secs(&self, work: f64) -> f64 {
        let capacity = self.effective_capacity();
        if capacity <= 0.0 {
            return f64::INFINITY;
        }
        work.max(0.0) / capacity
    }

    /// Advance the node by `dt` seconds of processing, draining the backlog
    /// at the *effective* capacity (a down node processes nothing). Returns
    /// the amount of work actually processed this tick.
    pub fn tick(&mut self, dt_secs: f64) -> f64 {
        let can_do = self.effective_capacity() * dt_secs.max(0.0);
        let done = can_do.min(self.backlog);
        let backlog_before = self.backlog;
        self.backlog -= done;
        // Attribute drained work proportionally to overhead vs query work,
        // and retire the in-flight tuple estimate at the same rate.
        let overhead_share = if done > 0.0 && backlog_before > 0.0 {
            (self.overhead_pending / backlog_before).clamp(0.0, 1.0) * done
        } else {
            0.0
        };
        let overhead_share = overhead_share.min(self.overhead_pending);
        self.overhead_pending -= overhead_share;
        self.overhead_done += overhead_share;
        self.work_done += done - overhead_share;
        if backlog_before > 0.0 {
            self.inflight_tuples *= (self.backlog / backlog_before).max(0.0);
        }
        done
    }

    /// Utilization over an interval of `dt` seconds given the work processed,
    /// relative to the nominal capacity.
    pub fn utilization(&self, work_processed: f64, dt_secs: f64) -> f64 {
        if dt_secs <= 0.0 {
            return 0.0;
        }
        (work_processed / (self.capacity * dt_secs)).clamp(0.0, 1.0)
    }

    /// Whether the node currently has more work queued than it can process in
    /// the given horizon (used to detect saturation). A down node with any
    /// backlog is always saturated.
    pub fn is_saturated(&self, horizon_secs: f64) -> bool {
        self.backlog > self.effective_capacity() * horizon_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_drains_backlog_up_to_capacity() {
        let mut n = SimNode::new(NodeId::new(0), 100.0);
        n.enqueue_work(250.0);
        assert_eq!(n.tick(1.0), 100.0);
        assert_eq!(n.backlog, 150.0);
        assert_eq!(n.tick(1.0), 100.0);
        assert_eq!(n.tick(1.0), 50.0);
        assert_eq!(n.backlog, 0.0);
        assert_eq!(n.tick(1.0), 0.0);
        assert!((n.work_done - 250.0).abs() < 1e-9);
    }

    #[test]
    fn queueing_and_service_times() {
        let mut n = SimNode::new(NodeId::new(1), 50.0);
        n.enqueue_work(100.0);
        assert!((n.queueing_delay_secs() - 2.0).abs() < 1e-12);
        assert!((n.service_time_secs(25.0) - 0.5).abs() < 1e-12);
        assert!(n.is_saturated(1.0));
        assert!(!n.is_saturated(10.0));
    }

    #[test]
    fn overhead_is_tracked_separately() {
        let mut n = SimNode::new(NodeId::new(0), 100.0);
        n.enqueue_work(60.0);
        n.enqueue_overhead(40.0);
        let done = n.tick(1.0);
        assert!((done - 100.0).abs() < 1e-9);
        assert!((n.overhead_done - 40.0).abs() < 1e-6);
        assert!((n.work_done - 60.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_is_bounded() {
        let n = SimNode::new(NodeId::new(0), 100.0);
        assert_eq!(n.utilization(50.0, 1.0), 0.5);
        assert_eq!(n.utilization(500.0, 1.0), 1.0);
        assert_eq!(n.utilization(10.0, 0.0), 0.0);
    }

    #[test]
    fn down_node_processes_nothing_and_recovers() {
        let mut n = SimNode::new(NodeId::new(0), 100.0);
        n.enqueue_work(50.0);
        let outcome = n.crash(RecoverySemantic::Replay);
        assert_eq!(outcome, CrashOutcome::default());
        assert!(!n.is_up());
        assert_eq!(n.effective_capacity(), 0.0);
        assert_eq!(n.tick(1.0), 0.0);
        assert_eq!(n.backlog, 50.0, "replay keeps the backlog");
        assert_eq!(n.queueing_delay_secs(), f64::INFINITY);
        assert_eq!(n.service_time_secs(10.0), f64::INFINITY);
        assert!(n.is_saturated(1e9));
        n.recover();
        assert_eq!(n.tick(1.0), 50.0);
        assert_eq!(n.backlog, 0.0);
    }

    #[test]
    fn crash_with_lost_semantics_discards_backlog_and_tuples() {
        let mut n = SimNode::new(NodeId::new(0), 100.0);
        n.enqueue_work_with_tuples(80.0, 8.0);
        n.enqueue_overhead(20.0);
        let outcome = n.crash(RecoverySemantic::Lost);
        assert!((outcome.work_lost - 100.0).abs() < 1e-12);
        assert!((outcome.tuples_lost - 8.0).abs() < 1e-12);
        assert_eq!(n.backlog, 0.0);
        assert_eq!(n.inflight_tuples(), 0.0);
        n.recover();
        assert_eq!(n.tick(1.0), 0.0, "nothing left to process");
    }

    #[test]
    fn degradation_slows_the_drain() {
        let mut n = SimNode::new(NodeId::new(0), 100.0);
        n.set_capacity_factor(0.25);
        assert_eq!(n.effective_capacity(), 25.0);
        n.enqueue_work(100.0);
        assert_eq!(n.tick(1.0), 25.0);
        assert!((n.queueing_delay_secs() - 3.0).abs() < 1e-12);
        n.set_capacity_factor(1.0);
        assert_eq!(n.tick(1.0), 75.0);
    }

    #[test]
    fn inflight_tuples_retire_proportionally_to_drain() {
        let mut n = SimNode::new(NodeId::new(0), 100.0);
        n.enqueue_work_with_tuples(200.0, 10.0);
        n.tick(1.0); // half the backlog drains
        assert!((n.inflight_tuples() - 5.0).abs() < 1e-9);
        n.tick(1.0);
        assert!(n.inflight_tuples().abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "node capacity must be positive")]
    fn zero_capacity_panics() {
        SimNode::new(NodeId::new(0), 0.0);
    }
}
