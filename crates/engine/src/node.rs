//! Simulated cluster nodes.

use rld_common::NodeId;
use serde::{Deserialize, Serialize};

/// One simulated machine: a work server with a fixed processing capacity
/// (cost units per second) and a FIFO backlog of queued work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimNode {
    /// The node's identifier.
    pub id: NodeId,
    /// Processing capacity in cost units per second.
    pub capacity: f64,
    /// Queued, not yet processed work in cost units.
    pub backlog: f64,
    /// Total query work processed so far.
    pub work_done: f64,
    /// Total overhead work (migrations, classification) processed so far.
    pub overhead_done: f64,
    /// Overhead work still queued (subset of `backlog`).
    overhead_pending: f64,
}

impl SimNode {
    /// Create an idle node.
    pub fn new(id: NodeId, capacity: f64) -> Self {
        assert!(capacity > 0.0, "node capacity must be positive");
        Self {
            id,
            capacity,
            backlog: 0.0,
            work_done: 0.0,
            overhead_done: 0.0,
            overhead_pending: 0.0,
        }
    }

    /// Enqueue query-processing work (cost units).
    pub fn enqueue_work(&mut self, work: f64) {
        debug_assert!(work >= 0.0);
        self.backlog += work.max(0.0);
    }

    /// Enqueue overhead work (migration state transfer, plan classification).
    pub fn enqueue_overhead(&mut self, work: f64) {
        debug_assert!(work >= 0.0);
        let w = work.max(0.0);
        self.backlog += w;
        self.overhead_pending += w;
    }

    /// The queueing delay (seconds) a new arrival would currently experience
    /// before its own work starts being served.
    pub fn queueing_delay_secs(&self) -> f64 {
        self.backlog / self.capacity
    }

    /// Time (seconds) this node needs to process `work` cost units once it
    /// reaches the head of the queue.
    pub fn service_time_secs(&self, work: f64) -> f64 {
        work.max(0.0) / self.capacity
    }

    /// Advance the node by `dt` seconds of processing, draining the backlog.
    /// Returns the amount of work actually processed this tick.
    pub fn tick(&mut self, dt_secs: f64) -> f64 {
        let can_do = self.capacity * dt_secs.max(0.0);
        let done = can_do.min(self.backlog);
        self.backlog -= done;
        // Attribute drained work proportionally to overhead vs query work.
        let overhead_share = if done > 0.0 && self.backlog + done > 0.0 {
            (self.overhead_pending / (self.backlog + done)).clamp(0.0, 1.0) * done
        } else {
            0.0
        };
        let overhead_share = overhead_share.min(self.overhead_pending);
        self.overhead_pending -= overhead_share;
        self.overhead_done += overhead_share;
        self.work_done += done - overhead_share;
        done
    }

    /// Utilization over an interval of `dt` seconds given the work processed.
    pub fn utilization(&self, work_processed: f64, dt_secs: f64) -> f64 {
        if dt_secs <= 0.0 {
            return 0.0;
        }
        (work_processed / (self.capacity * dt_secs)).clamp(0.0, 1.0)
    }

    /// Whether the node currently has more work queued than it can process in
    /// the given horizon (used to detect saturation).
    pub fn is_saturated(&self, horizon_secs: f64) -> bool {
        self.backlog > self.capacity * horizon_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_drains_backlog_up_to_capacity() {
        let mut n = SimNode::new(NodeId::new(0), 100.0);
        n.enqueue_work(250.0);
        assert_eq!(n.tick(1.0), 100.0);
        assert_eq!(n.backlog, 150.0);
        assert_eq!(n.tick(1.0), 100.0);
        assert_eq!(n.tick(1.0), 50.0);
        assert_eq!(n.backlog, 0.0);
        assert_eq!(n.tick(1.0), 0.0);
        assert!((n.work_done - 250.0).abs() < 1e-9);
    }

    #[test]
    fn queueing_and_service_times() {
        let mut n = SimNode::new(NodeId::new(1), 50.0);
        n.enqueue_work(100.0);
        assert!((n.queueing_delay_secs() - 2.0).abs() < 1e-12);
        assert!((n.service_time_secs(25.0) - 0.5).abs() < 1e-12);
        assert!(n.is_saturated(1.0));
        assert!(!n.is_saturated(10.0));
    }

    #[test]
    fn overhead_is_tracked_separately() {
        let mut n = SimNode::new(NodeId::new(0), 100.0);
        n.enqueue_work(60.0);
        n.enqueue_overhead(40.0);
        let done = n.tick(1.0);
        assert!((done - 100.0).abs() < 1e-9);
        assert!((n.overhead_done - 40.0).abs() < 1e-6);
        assert!((n.work_done - 60.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_is_bounded() {
        let n = SimNode::new(NodeId::new(0), 100.0);
        assert_eq!(n.utilization(50.0, 1.0), 0.5);
        assert_eq!(n.utilization(500.0, 1.0), 1.0);
        assert_eq!(n.utilization(10.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "node capacity must be positive")]
    fn zero_capacity_panics() {
        SimNode::new(NodeId::new(0), 0.0);
    }
}
