//! The discrete-time simulation loop.

use crate::metrics::{MetricsAccumulator, RunMetrics};
use crate::monitor::StatisticsMonitor;
use crate::node::SimNode;
use crate::system::SystemUnderTest;
use rld_common::rng::{derive_seed, rng_from_seed, sample_poisson};
use rld_common::{NodeId, Query, Result, RldError};
use rld_physical::Cluster;
use rld_query::CostModel;
use rld_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Simulation parameters. Defaults follow Table 2 where applicable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Length of one simulation tick in seconds.
    pub tick_secs: f64,
    /// Total simulated duration in seconds (the paper runs 30–60 minutes).
    pub duration_secs: f64,
    /// Statistics-monitor sampling period in seconds.
    pub monitor_period_secs: f64,
    /// Statistics-monitor exponential smoothing factor in `(0, 1]`.
    pub monitor_alpha: f64,
    /// Cost (in cost units) of migrating one kilobyte of operator state.
    pub migration_cost_per_kb: f64,
    /// Fixed cost (in cost units) per operator migration, covering suspension
    /// and re-deployment of the operator.
    pub migration_fixed_cost: f64,
    /// Seed for arrival-process randomness.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            tick_secs: 1.0,
            duration_secs: 300.0,
            monitor_period_secs: 5.0,
            monitor_alpha: 0.6,
            migration_cost_per_kb: 0.5,
            migration_fixed_cost: 50.0,
            seed: 0xD5_CAFE,
        }
    }
}

impl SimConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.tick_secs <= 0.0 || !self.tick_secs.is_finite() {
            return Err(RldError::Runtime("tick_secs must be positive".into()));
        }
        if self.duration_secs <= 0.0 || !self.duration_secs.is_finite() {
            return Err(RldError::Runtime("duration_secs must be positive".into()));
        }
        if self.monitor_period_secs <= 0.0 {
            return Err(RldError::Runtime(
                "monitor_period_secs must be positive".into(),
            ));
        }
        if !(self.monitor_alpha > 0.0 && self.monitor_alpha <= 1.0) {
            return Err(RldError::Runtime("monitor_alpha must be in (0, 1]".into()));
        }
        if self.migration_cost_per_kb < 0.0 || self.migration_fixed_cost < 0.0 {
            return Err(RldError::Runtime(
                "migration costs must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// The discrete-time DSPS simulator.
pub struct Simulator {
    query: Query,
    cluster: Cluster,
    config: SimConfig,
}

impl Simulator {
    /// Create a simulator for a query on a cluster.
    pub fn new(query: Query, cluster: Cluster, config: SimConfig) -> Result<Self> {
        config.validate()?;
        query.validate()?;
        Ok(Self {
            query,
            cluster,
            config,
        })
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run one system under test against a workload and collect metrics.
    pub fn run(&self, workload: &dyn Workload, system: &mut SystemUnderTest) -> Result<RunMetrics> {
        let cost_model = CostModel::new(self.query.clone());
        let mut nodes: Vec<SimNode> = self
            .cluster
            .node_ids()
            .into_iter()
            .map(|id| SimNode::new(id, self.cluster.capacity(id)))
            .collect();
        let mut monitor = StatisticsMonitor::new(
            self.query.default_stats(),
            self.config.monitor_period_secs,
            self.config.monitor_alpha,
        );
        let mut acc = MetricsAccumulator::new();
        let mut rng = rng_from_seed(derive_seed(self.config.seed, system.name()));

        let mut tuples_arrived: u64 = 0;
        let mut tuples_processed: u64 = 0;
        // Result tuples are produced at fractional rates (the product of all
        // selectivities can be well below one per driving tuple), so carry the
        // fractional remainder across batches instead of rounding it away.
        let mut produced_carry = 0.0f64;
        let mut total_work_capacity_used = 0.0f64;
        let mut max_backlog = 0.0f64;
        let mut ticks = 0u64;

        let dt = self.config.tick_secs;
        let mut t = 0.0f64;
        while t < self.config.duration_secs {
            let truth = workload.stats_at(t);
            monitor.observe(t, &truth);
            let monitored = monitor.current().clone();

            // Give DYN a chance to migrate before the batch is processed.
            let decisions =
                system.maybe_migrate(t, &self.query, &cost_model, &monitored, &self.cluster)?;
            for d in &decisions {
                let work = self.config.migration_fixed_cost
                    + self.config.migration_cost_per_kb * (d.state_bytes as f64 / 1024.0);
                nodes[d.from.index()].enqueue_overhead(work / 2.0);
                nodes[d.to.index()].enqueue_overhead(work / 2.0);
            }

            // Arrivals for this tick (Poisson thinning of the true rate).
            let rate = cost_model.input_rate(self.query.driving_stream, &truth);
            let n_tuples = sample_poisson(&mut rng, (rate * dt).max(0.0));
            if n_tuples > 0 {
                tuples_arrived += n_tuples;
                let logical = system.plan_for_batch(&monitored).ok_or_else(|| {
                    RldError::Runtime("system has no logical plan for the batch".into())
                })?;
                let physical = system.physical().clone();

                // Per-operator work for the whole batch at the true statistics.
                let work_by_op = cost_model.per_driving_tuple_work_by_operator(&logical, &truth)?;
                let mut node_work = vec![0.0f64; nodes.len()];
                for op in logical.ordering() {
                    let node = physical.node_of(*op).unwrap_or(NodeId::new(0));
                    if node.index() >= node_work.len() {
                        return Err(RldError::Runtime(format!(
                            "physical plan places {op} on unknown node {node}"
                        )));
                    }
                    node_work[node.index()] += work_by_op[op.index()] * n_tuples as f64;
                }

                // Latency: queueing delay plus service time on every node the
                // batch's pipeline touches, in plan order.
                let mut latency_secs = 0.0;
                let mut visited = vec![false; nodes.len()];
                for op in logical.ordering() {
                    let node = physical.node_of(*op).expect("validated above");
                    if !visited[node.index()] {
                        visited[node.index()] = true;
                        latency_secs += nodes[node.index()].queueing_delay_secs()
                            + nodes[node.index()].service_time_secs(node_work[node.index()]);
                    }
                }

                // Classification overhead (RLD): a fraction of the batch's
                // work charged to the node hosting the plan's first operator.
                let overhead_fraction = system.classification_overhead();
                if overhead_fraction > 0.0 {
                    let total_batch_work: f64 = node_work.iter().sum();
                    if let Some(first_op) = logical.ordering().first() {
                        let node = physical.node_of(*first_op).expect("validated above");
                        nodes[node.index()].enqueue_overhead(total_batch_work * overhead_fraction);
                    }
                }

                for (node, work) in nodes.iter_mut().zip(&node_work) {
                    node.enqueue_work(*work);
                }

                let produced_exact =
                    n_tuples as f64 * cost_model.output_per_input(&truth) + produced_carry;
                let produced = produced_exact.floor().max(0.0) as u64;
                produced_carry = produced_exact - produced as f64;
                let completion = t + latency_secs;
                if completion <= self.config.duration_secs {
                    tuples_processed += n_tuples;
                }
                acc.record_batch(n_tuples, latency_secs * 1000.0, produced, completion);
            }

            // Drain every node for this tick.
            for node in &mut nodes {
                let done = node.tick(dt);
                total_work_capacity_used += done;
                max_backlog = max_backlog.max(node.backlog);
            }
            ticks += 1;
            t += dt;
        }

        let query_work: f64 = nodes.iter().map(|n| n.work_done).sum();
        let overhead_work: f64 = nodes.iter().map(|n| n.overhead_done).sum();
        let capacity_total = self.cluster.total_capacity() * dt * ticks as f64;
        Ok(RunMetrics {
            system: system.name().to_string(),
            duration_secs: self.config.duration_secs,
            tuples_arrived,
            tuples_processed,
            tuples_produced: acc.produced_by(self.config.duration_secs),
            avg_tuple_processing_ms: acc.mean_latency_ms(),
            p95_tuple_processing_ms: acc.percentile_latency_ms(95.0),
            produced_timeline: acc.timeline(self.config.duration_secs),
            migrations: system.migrations(),
            plan_switches: system.plan_switches(),
            query_work,
            overhead_work,
            mean_utilization: if capacity_total > 0.0 {
                (total_work_capacity_used / capacity_total).clamp(0.0, 1.0)
            } else {
                0.0
            },
            max_backlog,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::UncertaintyLevel;
    use rld_logical::{EarlyTerminatedRobustPartitioning, ErpConfig, LogicalPlanGenerator};
    use rld_paramspace::{OccurrenceModel, ParameterSpace};
    use rld_physical::{DynPlanner, GreedyPhy, PhysicalPlanGenerator, RodPlanner, SupportModel};
    use rld_query::{JoinOrderOptimizer, Optimizer};
    use rld_workloads::{RatePattern, StockWorkload};

    fn capacity_for(query: &Query, slack: f64) -> f64 {
        let cm = CostModel::new(query.clone());
        let opt = JoinOrderOptimizer::new(query.clone());
        let lp = opt.optimize(&query.default_stats()).unwrap();
        let loads = cm.operator_loads(&lp, &query.default_stats()).unwrap();
        loads.iter().cloned().fold(0.0f64, f64::max) * slack
    }

    fn build_systems(
        query: &Query,
        cluster: &Cluster,
    ) -> (SystemUnderTest, SystemUnderTest, SystemUnderTest) {
        let est = query
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, query.default_stats(), 9).unwrap();
        let opt = JoinOrderOptimizer::new(query.clone());
        let erp =
            EarlyTerminatedRobustPartitioning::new(&opt, &space, ErpConfig::with_epsilon(0.2));
        let (solution, _) = erp.generate().unwrap();
        let model = SupportModel::build(query, &space, &solution, OccurrenceModel::Normal).unwrap();
        let (rld_pp, _) = GreedyPhy::new().generate(&model, cluster).unwrap();
        let rld = SystemUnderTest::rld(query, space, solution, rld_pp, 0.02);

        let rod_plan = RodPlanner::new()
            .plan(query, &query.default_stats(), cluster, 1.0)
            .unwrap();
        let rod = SystemUnderTest::rod(rod_plan.logical, rod_plan.physical);

        let dyn_planner = DynPlanner::new();
        let (lp, pp) = dyn_planner
            .initial_plan(query, &query.default_stats(), cluster)
            .unwrap();
        let dyn_sys = SystemUnderTest::dyn_system(lp, pp, dyn_planner, 5.0);
        (rld, rod, dyn_sys)
    }

    #[test]
    fn simulator_runs_all_three_systems() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(4, capacity_for(&q, 3.0)).unwrap();
        let config = SimConfig {
            duration_secs: 60.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let workload = StockWorkload::new(20.0, RatePattern::Constant(1.0));
        let (mut rld, mut rod, mut dyn_sys) = build_systems(&q, &cluster);
        for sys in [&mut rld, &mut rod, &mut dyn_sys] {
            let metrics = sim.run(&workload, sys).unwrap();
            assert!(
                metrics.tuples_arrived > 0,
                "{}: no arrivals",
                metrics.system
            );
            assert!(
                metrics.avg_tuple_processing_ms >= 0.0,
                "{}: negative latency",
                metrics.system
            );
            assert!(!metrics.produced_timeline.is_empty());
            assert!(metrics.mean_utilization >= 0.0 && metrics.mean_utilization <= 1.0);
        }
    }

    #[test]
    fn overload_increases_latency() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(3, capacity_for(&q, 1.6)).unwrap();
        let config = SimConfig {
            duration_secs: 120.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let calm = StockWorkload::new(30.0, RatePattern::Constant(0.5));
        let storm = StockWorkload::new(30.0, RatePattern::Constant(4.0));
        let (_, mut rod_a, _) = build_systems(&q, &cluster);
        let (_, mut rod_b, _) = build_systems(&q, &cluster);
        let low = sim.run(&calm, &mut rod_a).unwrap();
        let high = sim.run(&storm, &mut rod_b).unwrap();
        assert!(
            high.avg_tuple_processing_ms > low.avg_tuple_processing_ms,
            "overload should raise latency: {} vs {}",
            high.avg_tuple_processing_ms,
            low.avg_tuple_processing_ms
        );
    }

    #[test]
    fn rld_overhead_stays_small() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(4, capacity_for(&q, 3.0)).unwrap();
        let config = SimConfig {
            duration_secs: 90.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let workload = StockWorkload::new(30.0, RatePattern::Constant(1.0));
        let (mut rld, _, _) = build_systems(&q, &cluster);
        let metrics = sim.run(&workload, &mut rld).unwrap();
        // ~2% classification overhead, no migrations.
        assert!(
            metrics.overhead_fraction() < 0.05,
            "{}",
            metrics.overhead_fraction()
        );
        assert_eq!(metrics.migrations, 0);
    }

    #[test]
    fn produced_timeline_is_monotone() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(4, capacity_for(&q, 3.0)).unwrap();
        let config = SimConfig {
            duration_secs: 180.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let workload = StockWorkload::default_config();
        let (_, mut rod, _) = build_systems(&q, &cluster);
        let metrics = sim.run(&workload, &mut rod).unwrap();
        let counts: Vec<u64> = metrics.produced_timeline.iter().map(|(_, c)| *c).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), metrics.tuples_produced);
    }

    #[test]
    fn config_validation() {
        assert!(SimConfig::default().validate().is_ok());
        let bad = SimConfig {
            tick_secs: 0.0,
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            monitor_alpha: 2.0,
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            migration_fixed_cost: -1.0,
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        assert!(Simulator::new(q, cluster, bad).is_err());
    }

    #[test]
    fn runs_are_deterministic_for_same_seed() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(4, capacity_for(&q, 3.0)).unwrap();
        let config = SimConfig {
            duration_secs: 45.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let workload = StockWorkload::default_config();
        let (_, mut rod_a, _) = build_systems(&q, &cluster);
        let (_, mut rod_b, _) = build_systems(&q, &cluster);
        let a = sim.run(&workload, &mut rod_a).unwrap();
        let b = sim.run(&workload, &mut rod_b).unwrap();
        assert_eq!(a.tuples_arrived, b.tuples_arrived);
        assert_eq!(a.tuples_produced, b.tuples_produced);
        assert!((a.avg_tuple_processing_ms - b.avg_tuple_processing_ms).abs() < 1e-9);
    }
}
