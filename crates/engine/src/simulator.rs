//! The discrete-time simulation loop.

use crate::faults::{FaultKind, FaultPlan};
use crate::metrics::RunMetrics;
use crate::node::SimNode;
use crate::runtime::{BackendTotals, RunTrace, RuntimeCore};
use crate::stages::{
    batch_latency_secs, charge_batch, charge_migrations, drain_nodes, pipeline_down_node,
};
use crate::strategy::DistributionStrategy;
use rld_common::{Query, Result, RldError};
use rld_physical::{Cluster, ClusterView};
use rld_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Simulation parameters. Defaults follow Table 2 where applicable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Length of one simulation tick in seconds.
    pub tick_secs: f64,
    /// Total simulated duration in seconds (the paper runs 30–60 minutes).
    pub duration_secs: f64,
    /// Statistics-monitor sampling period in seconds.
    pub monitor_period_secs: f64,
    /// Statistics-monitor exponential smoothing factor in `(0, 1]`.
    pub monitor_alpha: f64,
    /// Cost (in cost units) of migrating one kilobyte of operator state.
    pub migration_cost_per_kb: f64,
    /// Fixed cost (in cost units) per operator migration, covering suspension
    /// and re-deployment of the operator.
    pub migration_fixed_cost: f64,
    /// Seed for arrival-process randomness.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            tick_secs: 1.0,
            duration_secs: 300.0,
            monitor_period_secs: 5.0,
            monitor_alpha: 0.6,
            migration_cost_per_kb: 0.5,
            migration_fixed_cost: 50.0,
            seed: 0xD5_CAFE,
        }
    }
}

impl SimConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.tick_secs <= 0.0 || !self.tick_secs.is_finite() {
            return Err(RldError::Runtime("tick_secs must be positive".into()));
        }
        if self.duration_secs <= 0.0 || !self.duration_secs.is_finite() {
            return Err(RldError::Runtime("duration_secs must be positive".into()));
        }
        if self.monitor_period_secs <= 0.0 {
            return Err(RldError::Runtime(
                "monitor_period_secs must be positive".into(),
            ));
        }
        if !(self.monitor_alpha > 0.0 && self.monitor_alpha <= 1.0) {
            return Err(RldError::Runtime("monitor_alpha must be in (0, 1]".into()));
        }
        if self.migration_cost_per_kb < 0.0 || self.migration_fixed_cost < 0.0 {
            return Err(RldError::Runtime(
                "migration costs must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// The discrete-time DSPS simulator.
///
/// The tick loop is a pipeline of the stages in [`crate::stages`]: fault
/// application (the [`FaultPlan`] may crash / recover / degrade nodes, and
/// the strategy is notified through its cluster-change hook), adaptation
/// (the strategy may migrate), arrivals, plan routing (with cached per-plan
/// load vectors), work accounting, and node drain. The simulator itself knows
/// nothing about the individual deployment policies — it only drives the
/// [`DistributionStrategy`] trait.
pub struct Simulator {
    query: Query,
    cluster: Cluster,
    config: SimConfig,
    faults: FaultPlan,
}

impl Simulator {
    /// Create a simulator for a query on a cluster (fault-free).
    pub fn new(query: Query, cluster: Cluster, config: SimConfig) -> Result<Self> {
        config.validate()?;
        query.validate()?;
        Ok(Self {
            query,
            cluster,
            config,
            faults: FaultPlan::none(),
        })
    }

    /// Attach a fault plan; its events are applied at tick granularity. The
    /// plan must only name nodes the cluster has.
    pub fn with_faults(mut self, faults: FaultPlan) -> Result<Self> {
        faults.validate_for(self.cluster.num_nodes())?;
        self.faults = faults;
        Ok(self)
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The fault plan applied during runs (empty by default).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Run one distribution strategy against a workload and collect metrics.
    pub fn run(
        &self,
        workload: &dyn Workload,
        strategy: &mut dyn DistributionStrategy,
    ) -> Result<RunMetrics> {
        self.run_inner(workload, strategy, false)
            .map(|(metrics, _)| metrics)
    }

    /// Like [`Self::run`], additionally recording every routing and
    /// migration decision — the cross-backend agreement oracle (the threaded
    /// executor's trace must match this one for fault-free runs).
    pub fn run_traced(
        &self,
        workload: &dyn Workload,
        strategy: &mut dyn DistributionStrategy,
    ) -> Result<(RunMetrics, RunTrace)> {
        self.run_inner(workload, strategy, true)
            .map(|(metrics, trace)| (metrics, trace.expect("trace was enabled")))
    }

    fn run_inner(
        &self,
        workload: &dyn Workload,
        strategy: &mut dyn DistributionStrategy,
        traced: bool,
    ) -> Result<(RunMetrics, Option<RunTrace>)> {
        let mut nodes: Vec<SimNode> = self
            .cluster
            .node_ids()
            .into_iter()
            .map(|id| SimNode::new(id, self.cluster.capacity(id)))
            .collect();
        let mut core = RuntimeCore::new(
            self.query.clone(),
            nodes.len(),
            self.config,
            self.faults.clone(),
            strategy.name(),
        )?;
        if traced {
            core = core.with_trace();
        }
        let mut view = ClusterView::all_up(&self.cluster);

        let mut tuples_processed: u64 = 0;
        // Result tuples are produced at fractional rates (the product of all
        // selectivities can be well below one per driving tuple), so carry the
        // fractional remainder across batches instead of rounding it away.
        let mut produced_carry = 0.0f64;
        let mut total_work_capacity_used = 0.0f64;
        let mut max_backlog = 0.0f64;
        let mut ticks = 0u64;
        // In-flight tuples a Lost-semantic crash discarded. Those tuples were
        // optimistically counted into `tuples_processed` when their batch was
        // accepted, so the total is retracted from the processed count at the
        // end — a tuple is either processed or lost, never both.
        let mut crash_lost_inflight = 0.0f64;

        let dt = self.config.tick_secs;
        let mut t = 0.0f64;
        while t < self.config.duration_secs {
            // Fault plane: apply every event due by the start of this tick
            // to the nodes, then derive the availability view from the node
            // states — the nodes are the single source of truth, the view
            // can never desync from what actually drains work.
            let mut cluster_changed = false;
            while let Some(event) = core.next_fault_due(t) {
                let node = &mut nodes[event.node.index()];
                match event.kind {
                    FaultKind::Crash => {
                        let outcome = node.crash(self.faults.recovery);
                        crash_lost_inflight += outcome.tuples_lost;
                        core.note_crash(t, outcome.tuples_lost);
                    }
                    FaultKind::Recover => node.recover(),
                    FaultKind::Degrade { factor } => node.set_capacity_factor(factor),
                    FaultKind::Restore => node.set_capacity_factor(1.0),
                }
                cluster_changed = true;
            }
            if cluster_changed {
                for node in &nodes {
                    view.set_up(node.id, node.is_up());
                    view.set_capacity_factor(node.id, node.capacity_factor());
                }
            }

            let truth = workload.stats_at(t);
            core.observe(t, &truth);

            // Cluster-change notification: the strategy may fail over
            // (migrate off dead nodes) before anything else happens.
            if cluster_changed {
                let decisions = {
                    let ctx = core.context(t, &self.cluster);
                    strategy.on_cluster_change(&ctx, &view, core.monitored())?
                };
                charge_migrations(&mut nodes, &decisions, &self.config)?;
                core.note_migrations(t, &decisions);
            }

            // Adaptation: give the strategy a chance to migrate before the
            // batch is processed, and charge what it decided.
            let decisions = {
                let ctx = core.context(t, &self.cluster);
                strategy.maybe_migrate(&ctx, core.monitored())?
            };
            charge_migrations(&mut nodes, &decisions, &self.config)?;
            core.note_migrations(t, &decisions);

            // Arrivals for this tick.
            let n_tuples = core.sample_arrivals(&truth);
            if n_tuples > 0 {
                // Routing: pick the logical plan and get the (cached) derived
                // per-node work vectors, then do the node-side work accounting
                // while the routed borrow is live.
                let accepted = {
                    let routed = core.route(&mut *strategy, &truth, nodes.len(), t)?;
                    if pipeline_down_node(&nodes, routed).is_some() {
                        // The placement routes this batch through a dead node:
                        // drop it loudly. The strategy was already notified via
                        // `on_cluster_change`; static policies eat the loss.
                        None
                    } else {
                        // Work accounting: measure latency against the pre-batch
                        // backlogs, then charge overhead and query work. Only the
                        // tuples counted as processed below are tracked in-flight
                        // on the nodes, so a `Lost` crash retracts exactly what
                        // was counted.
                        let latency_secs = batch_latency_secs(&nodes, routed, n_tuples);
                        let overhead_fraction = strategy.classification_overhead();
                        let produced_exact =
                            n_tuples as f64 * routed.output_per_input + produced_carry;
                        let completion = t + latency_secs;
                        let counted = completion <= self.config.duration_secs;
                        charge_batch(
                            &mut nodes,
                            routed,
                            n_tuples,
                            overhead_fraction,
                            if counted { n_tuples } else { 0 },
                        );

                        let produced = produced_exact.floor().max(0.0) as u64;
                        produced_carry = produced_exact - produced as f64;
                        if counted {
                            tuples_processed += n_tuples;
                        }
                        Some((latency_secs, produced, completion))
                    }
                };
                match accepted {
                    None => core.note_dropped_batch(n_tuples),
                    // The first accepted batch after a crash ends every
                    // pending crash-recovery window: recovery is measured to
                    // the batch's end-to-end completion time, so post-crash
                    // backlog on the surviving nodes still counts.
                    Some((latency_secs, produced, completion)) => {
                        core.record_batch(n_tuples, latency_secs * 1000.0, produced, completion)
                    }
                }
            }

            // Drain every node for this tick at its effective capacity.
            let drained = drain_nodes(&mut nodes, dt);
            total_work_capacity_used += drained.work_done;
            max_backlog = max_backlog.max(drained.max_backlog);
            for node in &nodes {
                core.account_node(dt, node.is_up(), node.effective_capacity());
            }
            ticks += 1;
            t += dt;
        }

        // Retract the optimistic processed count for tuples a Lost crash
        // discarded (see `crash_lost_inflight` above).
        tuples_processed = tuples_processed.saturating_sub(crash_lost_inflight.round() as u64);

        let query_work: f64 = nodes.iter().map(|n| n.work_done).sum();
        let overhead_work: f64 = nodes.iter().map(|n| n.overhead_done).sum();
        let capacity_total = self.cluster.total_capacity() * dt * ticks as f64;
        let (metrics, trace) = core.finish(
            &*strategy,
            BackendTotals {
                tuples_processed,
                query_work,
                overhead_work,
                mean_utilization: if capacity_total > 0.0 {
                    (total_work_capacity_used / capacity_total).clamp(0.0, 1.0)
                } else {
                    0.0
                },
                max_backlog,
                capacity_total,
            },
        );
        Ok((metrics, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::RodStrategy;
    use rld_common::{NodeId, StatsSnapshot};
    use rld_physical::{PhysicalPlan, RodPlanner};
    use rld_query::{CostModel, JoinOrderOptimizer, LogicalPlan, Optimizer};
    use rld_workloads::{RatePattern, StockWorkload};

    /// Per-node capacity leaving `slack`× headroom over the heaviest single
    /// operator of the estimate-point plan.
    fn capacity_for(query: &Query, slack: f64) -> f64 {
        let cm = CostModel::new(query.clone());
        let opt = JoinOrderOptimizer::new(query.clone());
        let lp = opt.optimize(&query.default_stats()).unwrap();
        let loads = cm.operator_loads(&lp, &query.default_stats()).unwrap();
        loads.iter().cloned().fold(0.0f64, f64::max) * slack
    }

    fn rod_strategy(query: &Query, cluster: &Cluster) -> RodStrategy {
        let plan = RodPlanner::new()
            .plan(query, &query.default_stats(), cluster, 1.0)
            .unwrap();
        RodStrategy::new(plan.logical, plan.physical)
    }

    #[test]
    fn simulator_drives_a_strategy_end_to_end() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(4, capacity_for(&q, 3.0)).unwrap();
        let config = SimConfig {
            duration_secs: 60.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let workload = StockWorkload::new(20.0, RatePattern::Constant(1.0));
        let mut rod = rod_strategy(&q, &cluster);
        let metrics = sim.run(&workload, &mut rod).unwrap();
        assert!(metrics.tuples_arrived > 0);
        assert!(metrics.avg_tuple_processing_ms >= 0.0);
        assert!(!metrics.produced_timeline.is_empty());
        assert!(metrics.mean_utilization >= 0.0 && metrics.mean_utilization <= 1.0);
        assert!(metrics.batches > 0);
        assert!(metrics.work_vector_recomputes <= metrics.batches);
    }

    #[test]
    fn overload_increases_latency() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(3, capacity_for(&q, 1.6)).unwrap();
        let config = SimConfig {
            duration_secs: 120.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let calm = StockWorkload::new(30.0, RatePattern::Constant(0.5));
        let storm = StockWorkload::new(30.0, RatePattern::Constant(4.0));
        let mut rod_a = rod_strategy(&q, &cluster);
        let mut rod_b = rod_strategy(&q, &cluster);
        let low = sim.run(&calm, &mut rod_a).unwrap();
        let high = sim.run(&storm, &mut rod_b).unwrap();
        assert!(
            high.avg_tuple_processing_ms > low.avg_tuple_processing_ms,
            "overload should raise latency: {} vs {}",
            high.avg_tuple_processing_ms,
            low.avg_tuple_processing_ms
        );
    }

    #[test]
    fn produced_timeline_is_monotone() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(4, capacity_for(&q, 3.0)).unwrap();
        let config = SimConfig {
            duration_secs: 180.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let workload = StockWorkload::default_config();
        let mut rod = rod_strategy(&q, &cluster);
        let metrics = sim.run(&workload, &mut rod).unwrap();
        let counts: Vec<u64> = metrics.produced_timeline.iter().map(|(_, c)| *c).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), metrics.tuples_produced);
    }

    #[test]
    fn work_vectors_are_cached_across_ticks() {
        // The stock workload flips regimes every `period` seconds; between
        // flips the ground truth is constant, so the router must derive the
        // work vectors only a handful of times over hundreds of batches.
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(4, capacity_for(&q, 3.0)).unwrap();
        let config = SimConfig {
            duration_secs: 600.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let workload = StockWorkload::new(60.0, RatePattern::Constant(1.0));
        let mut rod = rod_strategy(&q, &cluster);
        let metrics = sim.run(&workload, &mut rod).unwrap();
        assert!(
            metrics.batches > 100,
            "need a long run: {}",
            metrics.batches
        );
        // 600 s at one regime flip per 60 s: at most one recompute per flip
        // (plus the first derivation), far below one per batch.
        assert!(
            metrics.work_vector_recomputes <= 12,
            "expected ≤ 12 recomputes for 10 regime stretches, got {} over {} batches",
            metrics.work_vector_recomputes,
            metrics.batches
        );
    }

    #[test]
    fn missing_placement_is_a_runtime_error() {
        // A strategy whose placement covers a different (larger) node count
        // than the simulated cluster: routing must fail loudly, not silently
        // charge node 0.
        struct Misplaced {
            logical: LogicalPlan,
            physical: PhysicalPlan,
        }
        impl DistributionStrategy for Misplaced {
            fn name(&self) -> &str {
                "BAD"
            }
            fn physical(&self) -> &PhysicalPlan {
                &self.physical
            }
            fn plan_for_batch(
                &mut self,
                _m: &StatsSnapshot,
            ) -> Option<std::sync::Arc<LogicalPlan>> {
                Some(std::sync::Arc::new(self.logical.clone()))
            }
        }
        let q = Query::q1_stock_monitoring();
        // All operators on node 5 of a 6-node plan, but simulate 2 nodes.
        let mapping: Vec<NodeId> = (0..q.num_operators()).map(|_| NodeId::new(5)).collect();
        let physical = PhysicalPlan::from_mapping(&q, &mapping, 6).unwrap();
        let mut bad = Misplaced {
            logical: LogicalPlan::identity(&q),
            physical,
        };
        let cluster = Cluster::homogeneous(2, 1e9).unwrap();
        let sim = Simulator::new(q, cluster, SimConfig::default()).unwrap();
        let workload = StockWorkload::default_config();
        let err = sim.run(&workload, &mut bad).unwrap_err();
        assert!(matches!(err, RldError::Runtime(_)), "{err:?}");
    }

    #[test]
    fn config_validation() {
        assert!(SimConfig::default().validate().is_ok());
        let bad = SimConfig {
            tick_secs: 0.0,
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            monitor_alpha: 2.0,
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            migration_fixed_cost: -1.0,
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        assert!(Simulator::new(q, cluster, bad).is_err());
    }

    #[test]
    fn node_crash_loses_tuples_for_a_static_strategy() {
        use crate::faults::{FaultPlan, RecoverySemantic};
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(4, capacity_for(&q, 3.0)).unwrap();
        let config = SimConfig {
            duration_secs: 180.0,
            ..SimConfig::default()
        };
        let workload = StockWorkload::new(20.0, RatePattern::Constant(1.0));

        let baseline_sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let mut rod = rod_strategy(&q, &cluster);
        let baseline = baseline_sim.run(&workload, &mut rod).unwrap();
        assert_eq!(baseline.fault_events, 0);
        assert_eq!(baseline.tuples_lost, 0);
        assert_eq!(baseline.reroutes, 0);
        assert_eq!(baseline.downtime_node_secs, 0.0);
        assert!((baseline.capacity_available_fraction - 1.0).abs() < 1e-12);

        // Crash a node ROD's placement uses for 60 s.
        let victim = (0..4)
            .map(rld_common::NodeId::new)
            .find(|n| !rod.physical().operators_on(*n).is_empty())
            .unwrap();
        let faulted_sim = Simulator::new(q.clone(), cluster.clone(), config)
            .unwrap()
            .with_faults(
                FaultPlan::node_crash(victim, 60.0, 120.0, RecoverySemantic::Lost).unwrap(),
            )
            .unwrap();
        let mut rod2 = rod_strategy(&q, &cluster);
        let faulted = faulted_sim.run(&workload, &mut rod2).unwrap();
        assert_eq!(faulted.fault_events, 2);
        assert!(faulted.tuples_lost > 0, "{faulted:?}");
        assert!(faulted.reroutes > 0);
        assert!((faulted.downtime_node_secs - 60.0).abs() < 1.5);
        assert!(faulted.capacity_available_fraction < 1.0);
        assert!(faulted.mean_utilization <= faulted.capacity_available_fraction + 1e-9);
        // ROD only completes a batch again once the node is back: recovery
        // time is on the order of the 60 s outage.
        assert!(faulted.mean_recovery_secs > 30.0, "{faulted:?}");
        assert!(faulted.tuples_produced < baseline.tuples_produced);
        // The same arrivals hit both runs.
        assert_eq!(faulted.tuples_arrived, baseline.tuples_arrived);
    }

    #[test]
    fn faulted_runs_are_deterministic_per_seed() {
        use crate::faults::{FaultPlan, RecoverySemantic};
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(4, capacity_for(&q, 3.0)).unwrap();
        let config = SimConfig {
            duration_secs: 90.0,
            ..SimConfig::default()
        };
        let plan = FaultPlan::node_crash(
            rld_common::NodeId::new(0),
            30.0,
            60.0,
            RecoverySemantic::Lost,
        )
        .unwrap();
        let run = || {
            let sim = Simulator::new(q.clone(), cluster.clone(), config)
                .unwrap()
                .with_faults(plan.clone())
                .unwrap();
            let mut rod = rod_strategy(&q, &cluster);
            sim.run(&StockWorkload::default_config(), &mut rod).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fault runs must be bit-deterministic");
        assert!(a.fault_events == 2);
    }

    #[test]
    fn fault_plan_naming_a_missing_node_is_rejected() {
        use crate::faults::{FaultPlan, RecoverySemantic};
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        let plan = FaultPlan::node_crash(
            rld_common::NodeId::new(7),
            10.0,
            20.0,
            RecoverySemantic::Lost,
        )
        .unwrap();
        assert!(Simulator::new(q, cluster, SimConfig::default())
            .unwrap()
            .with_faults(plan)
            .is_err());
    }

    #[test]
    fn runs_are_deterministic_for_same_seed() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(4, capacity_for(&q, 3.0)).unwrap();
        let config = SimConfig {
            duration_secs: 45.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(q.clone(), cluster.clone(), config).unwrap();
        let workload = StockWorkload::default_config();
        let mut rod_a = rod_strategy(&q, &cluster);
        let mut rod_b = rod_strategy(&q, &cluster);
        let a = sim.run(&workload, &mut rod_a).unwrap();
        let b = sim.run(&workload, &mut rod_b).unwrap();
        assert_eq!(a.tuples_arrived, b.tuples_arrived);
        assert_eq!(a.tuples_produced, b.tuples_produced);
        assert!((a.avg_tuple_processing_ms - b.avg_tuple_processing_ms).abs() < 1e-9);
    }
}
