//! The concrete distribution strategies compared at runtime (§6.5).
//!
//! Each strategy implements [`crate::strategy::DistributionStrategy`] and can
//! therefore be driven by [`crate::simulator::Simulator`] interchangeably:
//!
//! * [`RldStrategy`] — the paper's contribution: a fixed robust physical
//!   plan, per-batch logical-plan classification, no migration ever.
//! * [`RodStrategy`] — Resilient Operator Distribution: one plan, one static
//!   placement, no adaptation at all.
//! * [`DynStrategy`] — Borealis-style dynamic load distribution: one plan,
//!   periodic operator migration off overloaded nodes.
//! * [`HybridStrategy`] — RLD's classification plus DYN-style migration, but
//!   only when the monitored statistics escape every robust region — the
//!   adaptivity middle ground Strider-style systems argue for.

mod dynamic;
mod hybrid;
mod rld;
mod rod;

pub use dynamic::DynStrategy;
pub use hybrid::HybridStrategy;
pub use rld::RldStrategy;
pub use rod::RodStrategy;

use crate::strategy::RuntimeContext;
use rld_common::{Result, StatsSnapshot};
use rld_physical::{DynPlanner, MigrationDecision, PhysicalPlan};
use rld_query::LogicalPlan;

/// One DYN-style rebalance round, shared by [`DynStrategy`] and
/// [`HybridStrategy`]'s fallback so the two can never silently diverge:
/// estimate per-operator loads for `plan` at the monitored statistics, ask
/// the controller for migrations, and apply them to `physical`.
pub(crate) fn rebalance_round(
    planner: &DynPlanner,
    ctx: &RuntimeContext<'_>,
    monitored: &StatsSnapshot,
    plan: &LogicalPlan,
    physical: &mut PhysicalPlan,
) -> Result<Vec<MigrationDecision>> {
    let loads = ctx.cost_model.operator_loads(plan, monitored)?;
    let decisions = planner.rebalance(ctx.query, physical, &loads, ctx.cluster)?;
    for d in &decisions {
        *physical = physical.with_operator_moved(d.operator, d.to)?;
    }
    Ok(decisions)
}
