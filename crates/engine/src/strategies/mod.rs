//! The concrete distribution strategies compared at runtime (§6.5).
//!
//! Each strategy implements [`crate::strategy::DistributionStrategy`] and can
//! therefore be driven by [`crate::simulator::Simulator`] interchangeably:
//!
//! * [`RldStrategy`] — the paper's contribution: a fixed robust physical
//!   plan, per-batch logical-plan classification, no migration ever.
//! * [`RodStrategy`] — Resilient Operator Distribution: one plan, one static
//!   placement, no adaptation at all.
//! * [`DynStrategy`] — Borealis-style dynamic load distribution: one plan,
//!   periodic operator migration off overloaded nodes.
//! * [`HybridStrategy`] — RLD's classification plus DYN-style migration, but
//!   only when the monitored statistics escape every robust region — the
//!   adaptivity middle ground Strider-style systems argue for.

mod dynamic;
mod hybrid;
mod rld;
mod rod;

pub use dynamic::DynStrategy;
pub use hybrid::HybridStrategy;
pub use rld::RldStrategy;
pub use rod::RodStrategy;

use crate::strategy::RuntimeContext;
use rld_common::{NodeId, Query, Result, StatsSnapshot};
use rld_physical::{ClusterView, DynPlanner, MigrationDecision, PhysicalPlan};
use rld_query::LogicalPlan;

/// The per-node capacity vector a rebalance round should balance against:
/// the availability view's effective capacities when the strategy has been
/// told about cluster changes, the nominal cluster capacities otherwise.
pub(crate) fn rebalance_capacities(
    ctx: &RuntimeContext<'_>,
    view: Option<&ClusterView>,
) -> Vec<f64> {
    match view {
        Some(v) => v.effective_capacities(),
        None => ctx.cluster.capacities().to_vec(),
    }
}

/// One DYN-style rebalance round, shared by [`DynStrategy`] and
/// [`HybridStrategy`]'s fallback so the two can never silently diverge:
/// estimate per-operator loads for `plan` at the monitored statistics, ask
/// the controller for migrations against the given per-node capacities
/// (zero = node unavailable), and apply them to `physical`.
pub(crate) fn rebalance_round(
    planner: &DynPlanner,
    ctx: &RuntimeContext<'_>,
    monitored: &StatsSnapshot,
    plan: &LogicalPlan,
    physical: &mut PhysicalPlan,
    capacities: &[f64],
) -> Result<Vec<MigrationDecision>> {
    let loads = ctx.cost_model.operator_loads(plan, monitored)?;
    let decisions = planner.rebalance_with_capacities(ctx.query, physical, &loads, capacities)?;
    for d in &decisions {
        *physical = physical.with_operator_moved(d.operator, d.to)?;
    }
    Ok(decisions)
}

/// Failover: migrate every operator placed on a down node to the up node
/// with the most effective-capacity headroom, shared by [`DynStrategy`] and
/// [`HybridStrategy`]'s cluster-change reactions. Unlike a regular rebalance
/// round this moves an operator even when no target has spare headroom —
/// an overloaded node still makes progress, a dead one loses everything.
/// Returns no decisions during a total outage (nowhere to go). Decisions
/// are applied to `physical` in operator order, so the result is
/// deterministic.
pub(crate) fn evacuate_down_nodes(
    query: &Query,
    physical: &mut PhysicalPlan,
    op_loads: &[f64],
    view: &ClusterView,
) -> Result<Vec<MigrationDecision>> {
    let mut node_loads = vec![0.0f64; view.num_nodes()];
    for op in query.operator_ids() {
        if let Some(node) = physical.node_of(op) {
            node_loads[node.index()] += op_loads[op.index()];
        }
    }
    let mut decisions = Vec::new();
    for op in query.operator_ids() {
        let Some(from) = physical.node_of(op) else {
            continue;
        };
        if view.is_up(from) {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, load) in node_loads.iter().enumerate() {
            let node = NodeId::new(i);
            if !view.is_up(node) {
                continue;
            }
            let headroom = view.effective_capacity(node) - load;
            if best.is_none_or(|(_, h)| headroom > h + 1e-12) {
                best = Some((i, headroom));
            }
        }
        let Some((to_idx, _)) = best else {
            return Ok(decisions); // total outage: nothing can host anything
        };
        let to = NodeId::new(to_idx);
        *physical = physical.with_operator_moved(op, to)?;
        node_loads[from.index()] -= op_loads[op.index()];
        node_loads[to_idx] += op_loads[op.index()];
        decisions.push(MigrationDecision {
            operator: op,
            from,
            to,
            state_bytes: query.operator(op)?.state_bytes,
        });
    }
    Ok(decisions)
}
