//! HYB — robust classification with a migration escape hatch.
//!
//! RLD's guarantee only holds while the monitored statistics stay inside the
//! modelled parameter space: the paper itself notes that truly unexpected
//! fluctuations would still require migration. The hybrid strategy closes
//! that gap, occupying the middle of the static↔dynamic adaptivity spectrum:
//!
//! * While the monitored statistics fall inside some plan's ε-robust region,
//!   it behaves exactly like RLD — per-batch classification over a fixed
//!   placement, no migration, no migration overhead.
//! * Only when the statistics escape **every** robust region (drift outside
//!   the modelled space, or into an uncovered hole of it) does it fall back
//!   to DYN-style rebalancing, migrating operators off overloaded nodes at
//!   most once per rebalance period until the statistics return.
//! * When the statistics come back inside the regions after such an
//!   excursion, the strategy migrates the displaced operators **back** to the
//!   robust placement (paying those migrations once), because the robust
//!   physical plan — not whatever the excursion left behind — is what was
//!   chosen to support every robust logical plan under the node capacities.

use crate::classifier::OnlineClassifier;
use crate::strategy::{DistributionStrategy, RuntimeContext};
use rld_common::{Query, Result, StatsSnapshot};
use rld_logical::RobustLogicalSolution;
use rld_paramspace::ParameterSpace;
use rld_physical::{ClusterView, DynPlanner, MigrationDecision, PhysicalPlan};
use rld_query::{CostModel, LogicalPlan};
use std::sync::Arc;

/// RLD classification plus DYN-style migration restricted to the moments
/// when the monitored statistics fall outside every robust region.
pub struct HybridStrategy {
    classifier: OnlineClassifier,
    /// The current placement; deviates from `robust_physical` only during
    /// (and immediately after) an out-of-region excursion.
    physical: PhysicalPlan,
    /// The compile-time robust placement, restored once the statistics
    /// return inside the robust regions.
    robust_physical: PhysicalPlan,
    classification_overhead: f64,
    planner: DynPlanner,
    rebalance_period_secs: f64,
    last_rebalance_at: f64,
    last_plan: Option<Arc<LogicalPlan>>,
    migrations: u64,
    /// Latest availability view the simulator reported; `None` until the
    /// first cluster change (i.e. a fully healthy cluster).
    view: Option<ClusterView>,
}

impl HybridStrategy {
    /// Build the hybrid deployment from an RLD compile-time solution plus a
    /// DYN migration controller for the out-of-region fallback.
    pub fn new(
        query: &Query,
        space: ParameterSpace,
        solution: RobustLogicalSolution,
        physical: PhysicalPlan,
        classification_overhead: f64,
        planner: DynPlanner,
        rebalance_period_secs: f64,
    ) -> Self {
        Self {
            classifier: OnlineClassifier::new(space, solution)
                .with_cost_model(CostModel::new(query.clone())),
            robust_physical: physical.clone(),
            physical,
            classification_overhead: classification_overhead.max(0.0),
            planner,
            rebalance_period_secs: rebalance_period_secs.max(0.1),
            last_rebalance_at: f64::NEG_INFINITY,
            last_plan: None,
            migrations: 0,
            view: None,
        }
    }

    /// Whether the cluster (as last reported) is fully healthy — the only
    /// condition under which restoring the compile-time robust placement is
    /// sound, since that placement assumed every node's nominal capacity.
    fn cluster_healthy(&self) -> bool {
        self.view
            .as_ref()
            .is_none_or(ClusterView::all_nodes_healthy)
    }

    /// The per-batch plan selector.
    pub fn classifier(&self) -> &OnlineClassifier {
        &self.classifier
    }
}

impl DistributionStrategy for HybridStrategy {
    fn name(&self) -> &str {
        "HYB"
    }

    fn physical(&self) -> &PhysicalPlan {
        &self.physical
    }

    fn plan_for_batch(&mut self, monitored: &StatsSnapshot) -> Option<Arc<LogicalPlan>> {
        let plan = self.classifier.classify(monitored)?;
        self.last_plan = Some(Arc::clone(&plan));
        Some(plan)
    }

    fn classification_overhead(&self) -> f64 {
        self.classification_overhead
    }

    fn plan_switches(&self) -> u64 {
        self.classifier.plan_switches() as u64
    }

    fn migrations(&self) -> u64 {
        self.migrations
    }

    fn maybe_migrate(
        &mut self,
        ctx: &RuntimeContext<'_>,
        monitored: &StatsSnapshot,
    ) -> Result<Vec<MigrationDecision>> {
        if self.cluster_healthy() && self.classifier.robustly_covered(monitored) {
            // Inside a robust region the RLD guarantee holds — but it is
            // stated for the *robust* placement. If an excursion displaced
            // operators, migrate them back (once per rebalance period);
            // otherwise never migrate.
            if self.physical == self.robust_physical
                || ctx.t_secs - self.last_rebalance_at < self.rebalance_period_secs
            {
                return Ok(Vec::new());
            }
            self.last_rebalance_at = ctx.t_secs;
            let mut decisions = Vec::new();
            for op in ctx.query.operator_ids() {
                let (Some(from), Some(home)) =
                    (self.physical.node_of(op), self.robust_physical.node_of(op))
                else {
                    continue;
                };
                if from != home {
                    decisions.push(MigrationDecision {
                        operator: op,
                        from,
                        to: home,
                        state_bytes: ctx.query.operator(op)?.state_bytes,
                    });
                }
            }
            self.physical = self.robust_physical.clone();
            self.migrations += decisions.len() as u64;
            return Ok(decisions);
        }
        if ctx.t_secs - self.last_rebalance_at < self.rebalance_period_secs {
            return Ok(Vec::new());
        }
        // Balance for the plan the classifier last routed a batch through
        // (the cheapest fallback when no region covers the stats). Before any
        // batch has been routed there is nothing meaningful to balance for —
        // and peeking via `classify` here would perturb the plan-switch
        // bookkeeping — so the round is deferred, not consumed.
        let Some(plan) = self.last_plan.clone() else {
            return Ok(Vec::new());
        };
        self.last_rebalance_at = ctx.t_secs;
        let capacities = super::rebalance_capacities(ctx, self.view.as_ref());
        let decisions = super::rebalance_round(
            &self.planner,
            ctx,
            monitored,
            plan.as_ref(),
            &mut self.physical,
            &capacities,
        )?;
        self.migrations += decisions.len() as u64;
        Ok(decisions)
    }

    fn on_cluster_change(
        &mut self,
        ctx: &RuntimeContext<'_>,
        view: &ClusterView,
        monitored: &StatsSnapshot,
    ) -> Result<Vec<MigrationDecision>> {
        self.view = Some(view.clone());
        if view.down_nodes().is_empty() {
            // Degrade/restore only: the stored view gates restoration and
            // steers the fallback rebalance; nothing to evacuate.
            return Ok(Vec::new());
        }
        // Node death voids the robust guarantee (it assumed every node's
        // capacity), so the hybrid fails over immediately — even inside a
        // robust region. Restoration back to the robust placement happens
        // through `maybe_migrate` once the cluster is healthy again. Loads
        // are estimated for the last routed plan — or, if the crash precedes
        // the first batch, for any robust plan (evacuation must not strand
        // operators just because nothing has been routed yet).
        let plan = match self.last_plan.clone() {
            Some(plan) => plan,
            None => match self.classifier.solution().plans().next() {
                Some(plan) => Arc::new(plan.clone()),
                None => return Ok(Vec::new()), // empty solution: nothing runs
            },
        };
        let loads = ctx.cost_model.operator_loads(&plan, monitored)?;
        let decisions = super::evacuate_down_nodes(ctx.query, &mut self.physical, &loads, view)?;
        self.migrations += decisions.len() as u64;
        Ok(decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{StatKey, UncertaintyLevel};
    use rld_logical::{EarlyTerminatedRobustPartitioning, ErpConfig, LogicalPlanGenerator};
    use rld_paramspace::OccurrenceModel;
    use rld_physical::{Cluster, GreedyPhy, PhysicalPlanGenerator, SupportModel};
    use rld_query::{JoinOrderOptimizer, Optimizer};

    fn build_hybrid(cluster: &Cluster) -> (Query, HybridStrategy) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), 9).unwrap();
        let opt = JoinOrderOptimizer::new(q.clone());
        let erp =
            EarlyTerminatedRobustPartitioning::new(&opt, &space, ErpConfig::with_epsilon(0.2));
        let (solution, _) = erp.generate().unwrap();
        let model = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        let (pp, _) = GreedyPhy::new().generate(&model, cluster).unwrap();
        let strategy = HybridStrategy::new(&q, space, solution, pp, 0.02, DynPlanner::new(), 1.0);
        (q, strategy)
    }

    #[test]
    fn hybrid_never_migrates_inside_robust_regions() {
        let cluster = Cluster::homogeneous(4, 1e9).unwrap();
        let (q, mut s) = build_hybrid(&cluster);
        assert_eq!(s.name(), "HYB");
        let cm = CostModel::new(q.clone());
        let stats = q.default_stats();
        assert!(s.classifier.robustly_covered(&stats));
        for step in 0..20 {
            let ctx = RuntimeContext {
                t_secs: step as f64 * 5.0,
                query: &q,
                cost_model: &cm,
                cluster: &cluster,
            };
            assert!(s.plan_for_batch(&stats).is_some());
            assert!(s.maybe_migrate(&ctx, &stats).unwrap().is_empty());
        }
        assert_eq!(s.migrations(), 0);
    }

    #[test]
    fn hybrid_fails_over_even_before_the_first_batch_is_routed() {
        // A crash that precedes any routed batch: `last_plan` is still None,
        // so evacuation must fall back to a robust plan for load estimation
        // instead of leaving operators stranded on the dead node.
        let cluster = Cluster::homogeneous(4, 1e9).unwrap();
        let (q, mut s) = build_hybrid(&cluster);
        let cm = CostModel::new(q.clone());
        let victim = (0..4)
            .map(rld_common::NodeId::new)
            .find(|n| !s.physical().operators_on(*n).is_empty())
            .expect("some node hosts operators");
        let mut view = ClusterView::all_up(&cluster);
        view.set_up(victim, false);
        let ctx = RuntimeContext {
            t_secs: 0.5,
            query: &q,
            cost_model: &cm,
            cluster: &cluster,
        };
        let decisions = s
            .on_cluster_change(&ctx, &view, &q.default_stats())
            .unwrap();
        assert!(!decisions.is_empty(), "stranded operators must move");
        assert!(s.physical().operators_on(victim).is_empty());
        assert_eq!(s.migrations(), decisions.len() as u64);
    }

    #[test]
    fn hybrid_migrates_when_stats_escape_the_space() {
        // Tight cluster so an out-of-space surge actually overloads a node.
        let q = Query::q1_stock_monitoring();
        let cm = CostModel::new(q.clone());
        let opt = JoinOrderOptimizer::new(q.clone());
        let lp = opt.optimize(&q.default_stats()).unwrap();
        let loads = cm.operator_loads(&lp, &q.default_stats()).unwrap();
        let total: f64 = loads.iter().sum();
        let cluster = Cluster::homogeneous(4, total * 0.7).unwrap();
        let (q, mut s) = build_hybrid(&cluster);

        // Drift a modelled dimension (op0's selectivity) far outside its
        // interval AND surge the rates so a node actually overloads.
        let mut wild = q.default_stats();
        wild.set(StatKey::Selectivity(rld_common::OperatorId::new(0)), 3.0);
        wild.set(
            StatKey::InputRate(q.driving_stream),
            q.streams[0].rate_estimate * 5.0,
        );
        assert!(!s.classifier.robustly_covered(&wild));
        let ctx = RuntimeContext {
            t_secs: 10.0,
            query: &q,
            cost_model: &cm,
            cluster: &cluster,
        };
        s.plan_for_batch(&wild);
        let robust_placement = s.physical().clone();
        let decisions = s.maybe_migrate(&ctx, &wild).unwrap();
        assert_eq!(s.migrations(), decisions.len() as u64);
        // Within the rebalance period no second round happens even if still
        // outside every region.
        let ctx = RuntimeContext {
            t_secs: 10.5,
            ..ctx
        };
        assert!(s.maybe_migrate(&ctx, &wild).unwrap().is_empty());

        // Once the statistics return inside the robust regions, the robust
        // placement is restored (paying one migration per displaced
        // operator), after which the strategy is exactly RLD again.
        let calm = q.default_stats();
        assert!(s.classifier.robustly_covered(&calm));
        let ctx = RuntimeContext {
            t_secs: 20.0,
            ..ctx
        };
        let restored = s.maybe_migrate(&ctx, &calm).unwrap();
        assert!(
            restored.len() <= decisions.len(),
            "at most one move back per displaced operator"
        );
        assert_eq!(*s.physical(), robust_placement);
        let ctx = RuntimeContext {
            t_secs: 30.0,
            ..ctx
        };
        assert!(s.maybe_migrate(&ctx, &calm).unwrap().is_empty());
    }
}
