//! DYN — Borealis-style dynamic load distribution, the migrating baseline.

use crate::strategy::{DistributionStrategy, RuntimeContext};
use rld_common::{Result, StatsSnapshot};
use rld_physical::{ClusterView, DynPlanner, MigrationDecision, PhysicalPlan};
use rld_query::LogicalPlan;
use std::sync::Arc;

/// One logical plan, but the placement is rebalanced at runtime by migrating
/// operators off overloaded nodes every `rebalance_period_secs` — and off
/// *dead* nodes immediately whenever the fault plane changes the cluster.
pub struct DynStrategy {
    logical: Arc<LogicalPlan>,
    physical: PhysicalPlan,
    planner: DynPlanner,
    rebalance_period_secs: f64,
    last_rebalance_at: f64,
    migrations: u64,
    /// Latest availability view the simulator reported; `None` until the
    /// first cluster change (i.e. a fully healthy cluster).
    view: Option<ClusterView>,
}

impl DynStrategy {
    /// Build the DYN deployment from its initial plan, placement and
    /// migration controller.
    pub fn new(
        logical: LogicalPlan,
        physical: PhysicalPlan,
        planner: DynPlanner,
        rebalance_period_secs: f64,
    ) -> Self {
        Self {
            logical: Arc::new(logical),
            physical,
            planner,
            rebalance_period_secs: rebalance_period_secs.max(0.1),
            last_rebalance_at: f64::NEG_INFINITY,
            migrations: 0,
            view: None,
        }
    }

    /// How often the controller re-evaluates the placement, in seconds.
    pub fn rebalance_period_secs(&self) -> f64 {
        self.rebalance_period_secs
    }
}

impl DistributionStrategy for DynStrategy {
    fn name(&self) -> &str {
        "DYN"
    }

    fn physical(&self) -> &PhysicalPlan {
        &self.physical
    }

    fn plan_for_batch(&mut self, _monitored: &StatsSnapshot) -> Option<Arc<LogicalPlan>> {
        Some(Arc::clone(&self.logical))
    }

    fn migrations(&self) -> u64 {
        self.migrations
    }

    fn maybe_migrate(
        &mut self,
        ctx: &RuntimeContext<'_>,
        monitored: &StatsSnapshot,
    ) -> Result<Vec<MigrationDecision>> {
        if ctx.t_secs - self.last_rebalance_at < self.rebalance_period_secs {
            return Ok(Vec::new());
        }
        self.last_rebalance_at = ctx.t_secs;
        let capacities = super::rebalance_capacities(ctx, self.view.as_ref());
        let decisions = super::rebalance_round(
            &self.planner,
            ctx,
            monitored,
            self.logical.as_ref(),
            &mut self.physical,
            &capacities,
        )?;
        self.migrations += decisions.len() as u64;
        Ok(decisions)
    }

    fn on_cluster_change(
        &mut self,
        ctx: &RuntimeContext<'_>,
        view: &ClusterView,
        monitored: &StatsSnapshot,
    ) -> Result<Vec<MigrationDecision>> {
        self.view = Some(view.clone());
        if view.down_nodes().is_empty() {
            // Degrade/restore only: the stored view steers the next periodic
            // rebalance; there is nothing to evacuate.
            return Ok(Vec::new());
        }
        // Fail over immediately: operators stranded on dead nodes process
        // nothing, so evacuation does not wait for the rebalance period.
        let loads = ctx.cost_model.operator_loads(&self.logical, monitored)?;
        let decisions = super::evacuate_down_nodes(ctx.query, &mut self.physical, &loads, view)?;
        self.migrations += decisions.len() as u64;
        Ok(decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{Query, StatKey};
    use rld_physical::Cluster;
    use rld_query::{CostModel, JoinOrderOptimizer, Optimizer};

    #[test]
    fn dyn_migrates_under_overload_and_respects_the_period() {
        let q = Query::q1_stock_monitoring();
        // Capacity chosen so the default-stat loads roughly fit, then we
        // triple the rates so one node overloads.
        let cost_model = CostModel::new(q.clone());
        let opt = JoinOrderOptimizer::new(q.clone());
        let lp = opt.optimize(&q.default_stats()).unwrap();
        let loads = cost_model.operator_loads(&lp, &q.default_stats()).unwrap();
        let total: f64 = loads.iter().sum();
        let cluster = Cluster::homogeneous(4, total * 0.7).unwrap();
        let planner = DynPlanner::new();
        let (logical, physical) = planner
            .initial_plan(&q, &q.default_stats(), &cluster)
            .unwrap();
        let mut s = DynStrategy::new(logical, physical, planner, 1.0);
        assert_eq!(s.name(), "DYN");

        let mut surged = q.default_stats();
        surged.set(
            StatKey::InputRate(q.driving_stream),
            q.streams[0].rate_estimate * 3.0,
        );
        let ctx = RuntimeContext {
            t_secs: 10.0,
            query: &q,
            cost_model: &cost_model,
            cluster: &cluster,
        };
        let placement_before = s.physical().clone();
        let decisions = s.maybe_migrate(&ctx, &surged).unwrap();
        // Either it migrated, or the placement was already as balanced as it
        // can be; both are valid, but the bookkeeping must be consistent.
        assert_eq!(s.migrations(), decisions.len() as u64);
        if decisions.is_empty() {
            assert_eq!(*s.physical(), placement_before);
        } else {
            assert_ne!(*s.physical(), placement_before);
        }
        // Within the rebalance period, no second migration round happens.
        let ctx = RuntimeContext {
            t_secs: 10.5,
            ..ctx
        };
        let again = s.maybe_migrate(&ctx, &surged).unwrap();
        assert!(again.is_empty());
    }

    #[test]
    fn dyn_evacuates_a_crashed_node_immediately() {
        let q = Query::q1_stock_monitoring();
        let cost_model = CostModel::new(q.clone());
        let cluster = Cluster::homogeneous(3, 1e6).unwrap();
        let planner = DynPlanner::new();
        let (logical, physical) = planner
            .initial_plan(&q, &q.default_stats(), &cluster)
            .unwrap();
        let mut s = DynStrategy::new(logical, physical, planner, 5.0);
        // Find a node hosting at least one operator and crash it.
        let victim = (0..3)
            .map(rld_common::NodeId::new)
            .find(|n| !s.physical().operators_on(*n).is_empty())
            .expect("some node hosts operators");
        let mut view = rld_physical::ClusterView::all_up(&cluster);
        view.set_up(victim, false);
        let ctx = RuntimeContext {
            t_secs: 3.0,
            query: &q,
            cost_model: &cost_model,
            cluster: &cluster,
        };
        let decisions = s
            .on_cluster_change(&ctx, &view, &q.default_stats())
            .unwrap();
        assert!(!decisions.is_empty(), "stranded operators must move");
        assert!(decisions.iter().all(|d| d.from == victim));
        assert!(decisions.iter().all(|d| d.to != victim));
        assert!(s.physical().operators_on(victim).is_empty());
        assert_eq!(s.migrations(), decisions.len() as u64);
        // The stored view keeps later rebalance rounds off the dead node.
        let ctx = RuntimeContext {
            t_secs: 10.0,
            ..ctx
        };
        for d in s.maybe_migrate(&ctx, &q.default_stats()).unwrap() {
            assert_ne!(d.to, victim);
        }
    }
}
