//! DYN — Borealis-style dynamic load distribution, the migrating baseline.

use crate::strategy::{DistributionStrategy, RuntimeContext};
use rld_common::{Result, StatsSnapshot};
use rld_physical::{DynPlanner, MigrationDecision, PhysicalPlan};
use rld_query::LogicalPlan;
use std::sync::Arc;

/// One logical plan, but the placement is rebalanced at runtime by migrating
/// operators off overloaded nodes every `rebalance_period_secs`.
pub struct DynStrategy {
    logical: Arc<LogicalPlan>,
    physical: PhysicalPlan,
    planner: DynPlanner,
    rebalance_period_secs: f64,
    last_rebalance_at: f64,
    migrations: u64,
}

impl DynStrategy {
    /// Build the DYN deployment from its initial plan, placement and
    /// migration controller.
    pub fn new(
        logical: LogicalPlan,
        physical: PhysicalPlan,
        planner: DynPlanner,
        rebalance_period_secs: f64,
    ) -> Self {
        Self {
            logical: Arc::new(logical),
            physical,
            planner,
            rebalance_period_secs: rebalance_period_secs.max(0.1),
            last_rebalance_at: f64::NEG_INFINITY,
            migrations: 0,
        }
    }

    /// How often the controller re-evaluates the placement, in seconds.
    pub fn rebalance_period_secs(&self) -> f64 {
        self.rebalance_period_secs
    }
}

impl DistributionStrategy for DynStrategy {
    fn name(&self) -> &str {
        "DYN"
    }

    fn physical(&self) -> &PhysicalPlan {
        &self.physical
    }

    fn plan_for_batch(&mut self, _monitored: &StatsSnapshot) -> Option<Arc<LogicalPlan>> {
        Some(Arc::clone(&self.logical))
    }

    fn migrations(&self) -> u64 {
        self.migrations
    }

    fn maybe_migrate(
        &mut self,
        ctx: &RuntimeContext<'_>,
        monitored: &StatsSnapshot,
    ) -> Result<Vec<MigrationDecision>> {
        if ctx.t_secs - self.last_rebalance_at < self.rebalance_period_secs {
            return Ok(Vec::new());
        }
        self.last_rebalance_at = ctx.t_secs;
        let decisions = super::rebalance_round(
            &self.planner,
            ctx,
            monitored,
            self.logical.as_ref(),
            &mut self.physical,
        )?;
        self.migrations += decisions.len() as u64;
        Ok(decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{Query, StatKey};
    use rld_physical::Cluster;
    use rld_query::{CostModel, JoinOrderOptimizer, Optimizer};

    #[test]
    fn dyn_migrates_under_overload_and_respects_the_period() {
        let q = Query::q1_stock_monitoring();
        // Capacity chosen so the default-stat loads roughly fit, then we
        // triple the rates so one node overloads.
        let cost_model = CostModel::new(q.clone());
        let opt = JoinOrderOptimizer::new(q.clone());
        let lp = opt.optimize(&q.default_stats()).unwrap();
        let loads = cost_model.operator_loads(&lp, &q.default_stats()).unwrap();
        let total: f64 = loads.iter().sum();
        let cluster = Cluster::homogeneous(4, total * 0.7).unwrap();
        let planner = DynPlanner::new();
        let (logical, physical) = planner
            .initial_plan(&q, &q.default_stats(), &cluster)
            .unwrap();
        let mut s = DynStrategy::new(logical, physical, planner, 1.0);
        assert_eq!(s.name(), "DYN");

        let mut surged = q.default_stats();
        surged.set(
            StatKey::InputRate(q.driving_stream),
            q.streams[0].rate_estimate * 3.0,
        );
        let ctx = RuntimeContext {
            t_secs: 10.0,
            query: &q,
            cost_model: &cost_model,
            cluster: &cluster,
        };
        let placement_before = s.physical().clone();
        let decisions = s.maybe_migrate(&ctx, &surged).unwrap();
        // Either it migrated, or the placement was already as balanced as it
        // can be; both are valid, but the bookkeeping must be consistent.
        assert_eq!(s.migrations(), decisions.len() as u64);
        if decisions.is_empty() {
            assert_eq!(*s.physical(), placement_before);
        } else {
            assert_ne!(*s.physical(), placement_before);
        }
        // Within the rebalance period, no second migration round happens.
        let ctx = RuntimeContext {
            t_secs: 10.5,
            ..ctx
        };
        let again = s.maybe_migrate(&ctx, &surged).unwrap();
        assert!(again.is_empty());
    }
}
