//! ROD — Resilient Operator Distribution (Xing et al.), the static baseline.

use crate::strategy::DistributionStrategy;
use rld_common::StatsSnapshot;
use rld_physical::PhysicalPlan;
use rld_query::LogicalPlan;
use std::sync::Arc;

/// One logical plan, one static placement, no runtime adaptation at all.
pub struct RodStrategy {
    logical: Arc<LogicalPlan>,
    physical: PhysicalPlan,
}

impl RodStrategy {
    /// Build the ROD deployment from its fixed logical plan and placement.
    pub fn new(logical: LogicalPlan, physical: PhysicalPlan) -> Self {
        Self {
            logical: Arc::new(logical),
            physical,
        }
    }
}

impl DistributionStrategy for RodStrategy {
    fn name(&self) -> &str {
        "ROD"
    }

    fn physical(&self) -> &PhysicalPlan {
        &self.physical
    }

    fn plan_for_batch(&mut self, _monitored: &StatsSnapshot) -> Option<Arc<LogicalPlan>> {
        Some(Arc::clone(&self.logical))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{OperatorId, Query, StatKey};
    use rld_physical::{Cluster, RodPlanner};

    #[test]
    fn rod_never_changes_plan() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(3, 1e9).unwrap();
        let rod = RodPlanner::new()
            .plan(&q, &q.default_stats(), &cluster, 1.0)
            .unwrap();
        let mut s = RodStrategy::new(rod.logical.clone(), rod.physical.clone());
        assert_eq!(s.name(), "ROD");
        let a = s.plan_for_batch(&q.default_stats()).unwrap();
        let mut shifted = q.default_stats();
        shifted.set(StatKey::Selectivity(OperatorId::new(0)), 0.05);
        let b = s.plan_for_batch(&shifted).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.classification_overhead(), 0.0);
        assert_eq!(s.plan_switches(), 0);
        assert_eq!(s.migrations(), 0);
    }
}
