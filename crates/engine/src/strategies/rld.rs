//! RLD — Robust Load Distribution, the paper's contribution.

use crate::classifier::OnlineClassifier;
use crate::strategy::DistributionStrategy;
use rld_common::{Query, StatsSnapshot};
use rld_logical::RobustLogicalSolution;
use rld_paramspace::ParameterSpace;
use rld_physical::PhysicalPlan;
use rld_query::{CostModel, LogicalPlan};
use std::sync::Arc;

/// A fixed physical plan supporting a set of robust logical plans, switched
/// per batch by the online classifier. The placement never changes at
/// runtime; the only overhead is classification.
pub struct RldStrategy {
    classifier: OnlineClassifier,
    physical: PhysicalPlan,
    classification_overhead: f64,
}

impl RldStrategy {
    /// Build the RLD deployment. The classifier routes each batch to the
    /// cheapest robust plan covering the monitored statistics, using the
    /// query's cost model.
    pub fn new(
        query: &Query,
        space: ParameterSpace,
        solution: RobustLogicalSolution,
        physical: PhysicalPlan,
        classification_overhead: f64,
    ) -> Self {
        Self {
            classifier: OnlineClassifier::new(space, solution)
                .with_cost_model(CostModel::new(query.clone())),
            physical,
            classification_overhead: classification_overhead.max(0.0),
        }
    }

    /// The per-batch plan selector.
    pub fn classifier(&self) -> &OnlineClassifier {
        &self.classifier
    }
}

impl DistributionStrategy for RldStrategy {
    fn name(&self) -> &str {
        "RLD"
    }

    fn physical(&self) -> &PhysicalPlan {
        &self.physical
    }

    fn plan_for_batch(&mut self, monitored: &StatsSnapshot) -> Option<Arc<LogicalPlan>> {
        self.classifier.classify(monitored)
    }

    fn classification_overhead(&self) -> f64 {
        self.classification_overhead
    }

    fn plan_switches(&self) -> u64 {
        self.classifier.plan_switches() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::UncertaintyLevel;
    use rld_logical::{EarlyTerminatedRobustPartitioning, ErpConfig, LogicalPlanGenerator};
    use rld_paramspace::OccurrenceModel;
    use rld_physical::{Cluster, GreedyPhy, PhysicalPlanGenerator, SupportModel};
    use rld_query::JoinOrderOptimizer;

    fn build_rld() -> (Query, RldStrategy) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), 9).unwrap();
        let opt = JoinOrderOptimizer::new(q.clone());
        let erp =
            EarlyTerminatedRobustPartitioning::new(&opt, &space, ErpConfig::with_epsilon(0.2));
        let (solution, _) = erp.generate().unwrap();
        let model = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        let cluster = Cluster::homogeneous(4, 1e9).unwrap();
        let (pp, _) = GreedyPhy::new().generate(&model, &cluster).unwrap();
        let strategy = RldStrategy::new(&q, space, solution, pp, 0.02);
        (q, strategy)
    }

    #[test]
    fn rld_classifies_batches_and_never_migrates() {
        let (q, mut s) = build_rld();
        assert_eq!(s.name(), "RLD");
        assert!(s.plan_for_batch(&q.default_stats()).is_some());
        assert!((s.classification_overhead() - 0.02).abs() < 1e-12);
        assert_eq!(s.migrations(), 0);
    }

    #[test]
    fn negative_overhead_is_clamped() {
        let (q, s2) = build_rld();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), 9).unwrap();
        let s = RldStrategy::new(
            &q,
            space,
            s2.classifier.solution().clone(),
            s2.physical.clone(),
            -1.0,
        );
        assert_eq!(s.classification_overhead(), 0.0);
    }
}
