//! The three deployments compared at runtime (§6.5): RLD, ROD and DYN.

use crate::classifier::OnlineClassifier;
use rld_common::{Query, Result, StatsSnapshot};
use rld_logical::RobustLogicalSolution;
use rld_paramspace::ParameterSpace;
use rld_physical::{Cluster, DynPlanner, MigrationDecision, PhysicalPlan};
use rld_query::{CostModel, LogicalPlan};

/// A deployed stream processing configuration whose runtime behaviour the
/// simulator exercises.
pub enum SystemUnderTest {
    /// Robust Load Distribution: a fixed physical plan supporting a set of
    /// robust logical plans, switched per batch by the online classifier.
    Rld {
        /// The per-batch plan selector.
        classifier: OnlineClassifier,
        /// The single robust physical plan (never changes at runtime).
        physical: PhysicalPlan,
        /// Classification overhead as a fraction of the batch's query work.
        classification_overhead: f64,
    },
    /// Resilient Operator Distribution: one logical plan, one static
    /// placement, no runtime adaptation at all.
    Rod {
        /// The single logical plan.
        logical: LogicalPlan,
        /// The static placement.
        physical: PhysicalPlan,
    },
    /// Dynamic load distribution: one logical plan, but the placement is
    /// rebalanced at runtime by migrating operators off overloaded nodes.
    Dyn {
        /// The single logical plan.
        logical: LogicalPlan,
        /// The current placement (changes as operators migrate).
        physical: PhysicalPlan,
        /// The migration controller.
        planner: DynPlanner,
        /// How often the controller re-evaluates the placement, in seconds.
        rebalance_period_secs: f64,
        /// Simulated time of the last rebalancing decision.
        last_rebalance_at: f64,
        /// Total migrations performed so far.
        migrations: u64,
    },
}

impl SystemUnderTest {
    /// Build the RLD deployment. The classifier routes each batch to the
    /// cheapest robust plan covering the monitored statistics, using the
    /// query's cost model.
    pub fn rld(
        query: &Query,
        space: ParameterSpace,
        solution: RobustLogicalSolution,
        physical: PhysicalPlan,
        classification_overhead: f64,
    ) -> Self {
        SystemUnderTest::Rld {
            classifier: OnlineClassifier::new(space, solution)
                .with_cost_model(CostModel::new(query.clone())),
            physical,
            classification_overhead: classification_overhead.max(0.0),
        }
    }

    /// Build the ROD deployment.
    pub fn rod(logical: LogicalPlan, physical: PhysicalPlan) -> Self {
        SystemUnderTest::Rod { logical, physical }
    }

    /// Build the DYN deployment.
    pub fn dyn_system(
        logical: LogicalPlan,
        physical: PhysicalPlan,
        planner: DynPlanner,
        rebalance_period_secs: f64,
    ) -> Self {
        SystemUnderTest::Dyn {
            logical,
            physical,
            planner,
            rebalance_period_secs: rebalance_period_secs.max(0.1),
            last_rebalance_at: f64::NEG_INFINITY,
            migrations: 0,
        }
    }

    /// The system's short name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SystemUnderTest::Rld { .. } => "RLD",
            SystemUnderTest::Rod { .. } => "ROD",
            SystemUnderTest::Dyn { .. } => "DYN",
        }
    }

    /// The current physical placement.
    pub fn physical(&self) -> &PhysicalPlan {
        match self {
            SystemUnderTest::Rld { physical, .. } => physical,
            SystemUnderTest::Rod { physical, .. } => physical,
            SystemUnderTest::Dyn { physical, .. } => physical,
        }
    }

    /// The logical plan to use for the next batch, given the monitor's
    /// current statistics view.
    pub fn plan_for_batch(&mut self, monitored: &StatsSnapshot) -> Option<LogicalPlan> {
        match self {
            SystemUnderTest::Rld { classifier, .. } => classifier.classify(monitored),
            SystemUnderTest::Rod { logical, .. } => Some(logical.clone()),
            SystemUnderTest::Dyn { logical, .. } => Some(logical.clone()),
        }
    }

    /// Classification overhead fraction (RLD only).
    pub fn classification_overhead(&self) -> f64 {
        match self {
            SystemUnderTest::Rld {
                classification_overhead,
                ..
            } => *classification_overhead,
            _ => 0.0,
        }
    }

    /// Number of logical plan switches performed so far (RLD only).
    pub fn plan_switches(&self) -> u64 {
        match self {
            SystemUnderTest::Rld { classifier, .. } => classifier.plan_switches() as u64,
            _ => 0,
        }
    }

    /// Number of operator migrations performed so far (DYN only).
    pub fn migrations(&self) -> u64 {
        match self {
            SystemUnderTest::Dyn { migrations, .. } => *migrations,
            _ => 0,
        }
    }

    /// Give the system a chance to adapt its placement at time `t` given the
    /// monitored statistics. Only DYN ever migrates; the returned decisions
    /// have already been applied to the system's placement, and the simulator
    /// charges their cost.
    pub fn maybe_migrate(
        &mut self,
        t_secs: f64,
        query: &Query,
        cost_model: &CostModel,
        monitored: &StatsSnapshot,
        cluster: &Cluster,
    ) -> Result<Vec<MigrationDecision>> {
        match self {
            SystemUnderTest::Dyn {
                logical,
                physical,
                planner,
                rebalance_period_secs,
                last_rebalance_at,
                migrations,
            } => {
                if t_secs - *last_rebalance_at < *rebalance_period_secs {
                    return Ok(Vec::new());
                }
                *last_rebalance_at = t_secs;
                let loads = cost_model.operator_loads(logical, monitored)?;
                let decisions = planner.rebalance(query, physical, &loads, cluster)?;
                for d in &decisions {
                    *physical = physical.with_operator_moved(d.operator, d.to)?;
                }
                *migrations += decisions.len() as u64;
                Ok(decisions)
            }
            _ => Ok(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::UncertaintyLevel;
    use rld_logical::{EarlyTerminatedRobustPartitioning, ErpConfig, LogicalPlanGenerator};
    use rld_paramspace::OccurrenceModel;
    use rld_physical::{GreedyPhy, PhysicalPlanGenerator, RodPlanner, SupportModel};
    use rld_query::{JoinOrderOptimizer, Optimizer};

    fn build_rld() -> (Query, SystemUnderTest) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), 9).unwrap();
        let opt = JoinOrderOptimizer::new(q.clone());
        let erp =
            EarlyTerminatedRobustPartitioning::new(&opt, &space, ErpConfig::with_epsilon(0.2));
        let (solution, _) = erp.generate().unwrap();
        let model = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        let cluster = Cluster::homogeneous(4, 1e9).unwrap();
        let (pp, _) = GreedyPhy::new().generate(&model, &cluster).unwrap();
        let system = SystemUnderTest::rld(&q, space, solution, pp, 0.02);
        (q, system)
    }

    #[test]
    fn rld_system_classifies_batches() {
        let (q, mut sys) = build_rld();
        assert_eq!(sys.name(), "RLD");
        assert!(sys.plan_for_batch(&q.default_stats()).is_some());
        assert!((sys.classification_overhead() - 0.02).abs() < 1e-12);
        assert_eq!(sys.migrations(), 0);
    }

    #[test]
    fn rod_system_never_changes_plan() {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(3, 1e9).unwrap();
        let rod = RodPlanner::new()
            .plan(&q, &q.default_stats(), &cluster, 1.0)
            .unwrap();
        let mut sys = SystemUnderTest::rod(rod.logical.clone(), rod.physical.clone());
        assert_eq!(sys.name(), "ROD");
        let a = sys.plan_for_batch(&q.default_stats()).unwrap();
        let mut shifted = q.default_stats();
        shifted.set(
            rld_common::StatKey::Selectivity(rld_common::OperatorId::new(0)),
            0.05,
        );
        let b = sys.plan_for_batch(&shifted).unwrap();
        assert_eq!(a, b);
        assert_eq!(sys.classification_overhead(), 0.0);
        assert_eq!(sys.plan_switches(), 0);
    }

    #[test]
    fn dyn_system_migrates_under_overload() {
        let q = Query::q1_stock_monitoring();
        // Capacity chosen so the default-stat loads roughly fit, then we
        // triple the rates so one node overloads.
        let cost_model = CostModel::new(q.clone());
        let opt = JoinOrderOptimizer::new(q.clone());
        let lp = opt.optimize(&q.default_stats()).unwrap();
        let loads = cost_model.operator_loads(&lp, &q.default_stats()).unwrap();
        let total: f64 = loads.iter().sum();
        let cluster = Cluster::homogeneous(4, total * 0.7).unwrap();
        let planner = DynPlanner::new();
        let (logical, physical) = planner
            .initial_plan(&q, &q.default_stats(), &cluster)
            .unwrap();
        let mut sys = SystemUnderTest::dyn_system(logical, physical, planner, 1.0);
        assert_eq!(sys.name(), "DYN");

        let mut surged = q.default_stats();
        surged.set(
            rld_common::StatKey::InputRate(q.driving_stream),
            q.streams[0].rate_estimate * 3.0,
        );
        let decisions = sys
            .maybe_migrate(10.0, &q, &cost_model, &surged, &cluster)
            .unwrap();
        // Either it migrated, or the placement was already as balanced as it
        // can be; both are valid, but the bookkeeping must be consistent.
        assert_eq!(sys.migrations(), decisions.len() as u64);
        // Within the rebalance period, no second migration round happens.
        let again = sys
            .maybe_migrate(10.5, &q, &cost_model, &surged, &cluster)
            .unwrap();
        assert!(again.is_empty());
    }
}
