//! Runtime metrics collected by the simulator.
//!
//! These are the measurements the paper reports in §6.5: average tuple
//! processing time (Figures 15a, 16a, 16b), the cumulative number of result
//! tuples produced over time (Figure 15b), and the runtime overhead beyond
//! query processing (classification for RLD, migrations for DYN).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Metrics of one simulated run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Name of the system under test (`"RLD"`, `"ROD"`, `"DYN"`).
    pub system: String,
    /// Simulated duration in seconds.
    pub duration_secs: f64,
    /// Number of driving tuples that arrived.
    pub tuples_arrived: u64,
    /// Number of driving tuples fully processed within the simulation horizon.
    pub tuples_processed: u64,
    /// Number of result tuples produced within the horizon.
    pub tuples_produced: u64,
    /// Mean per-tuple processing time (milliseconds) over processed tuples.
    pub avg_tuple_processing_ms: f64,
    /// 95th-percentile per-tuple processing time (milliseconds).
    pub p95_tuple_processing_ms: f64,
    /// Cumulative result tuples at one-minute granularity: `(minute, count)`.
    pub produced_timeline: Vec<(u64, u64)>,
    /// Number of operator migrations performed (DYN only).
    pub migrations: u64,
    /// Number of logical plan switches performed (RLD only).
    pub plan_switches: u64,
    /// Total query-processing work done (cost units).
    pub query_work: f64,
    /// Total overhead work done (cost units): migrations + classification.
    pub overhead_work: f64,
    /// Mean node utilization over the run, in `[0, 1]`.
    pub mean_utilization: f64,
    /// Maximum backlog observed on any node (cost units).
    pub max_backlog: f64,
    /// Number of non-empty tuple batches routed through the strategy.
    pub batches: u64,
    /// Number of times the simulator had to rebuild the per-plan operator
    /// load vectors (see [`crate::stages::PlanRouter`]); at most `batches`,
    /// and far below it when the routed plan and ground truth are stable
    /// between regime switches.
    pub work_vector_recomputes: u64,
}

impl RunMetrics {
    /// Runtime overhead as a fraction of total work.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.query_work + self.overhead_work;
        if total <= 0.0 {
            0.0
        } else {
            self.overhead_work / total
        }
    }

    /// Result-tuple throughput per second over the whole run.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.duration_secs <= 0.0 {
            0.0
        } else {
            self.tuples_produced as f64 / self.duration_secs
        }
    }

    /// Fraction of arrived tuples fully processed within the horizon.
    pub fn completion_ratio(&self) -> f64 {
        if self.tuples_arrived == 0 {
            1.0
        } else {
            self.tuples_processed as f64 / self.tuples_arrived as f64
        }
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: avg={:.1}ms p95={:.1}ms produced={} migrations={} switches={} overhead={:.1}%",
            self.system,
            self.avg_tuple_processing_ms,
            self.p95_tuple_processing_ms,
            self.tuples_produced,
            self.migrations,
            self.plan_switches,
            self.overhead_fraction() * 100.0
        )
    }
}

/// Online accumulator for per-tuple latencies and the produced-tuple timeline.
#[derive(Debug, Clone, Default)]
pub struct MetricsAccumulator {
    latencies_ms: Vec<f64>,
    produced_events: Vec<(f64, u64)>,
}

impl MetricsAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a processed batch: `tuples` driving tuples with the given
    /// per-tuple latency, producing `produced` result tuples at completion
    /// time `completion_secs`.
    pub fn record_batch(
        &mut self,
        tuples: u64,
        latency_ms: f64,
        produced: u64,
        completion_secs: f64,
    ) {
        if tuples > 0 {
            self.latencies_ms.push(latency_ms.max(0.0));
        }
        if produced > 0 {
            self.produced_events.push((completion_secs, produced));
        }
    }

    /// Weighted latency samples recorded so far.
    pub fn num_samples(&self) -> usize {
        self.latencies_ms.len()
    }

    /// Mean of the recorded latencies.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
    }

    /// The p-th percentile (0–100) of the recorded latencies.
    pub fn percentile_latency_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Total result tuples produced up to (and including) `t_secs`.
    pub fn produced_by(&self, t_secs: f64) -> u64 {
        self.produced_events
            .iter()
            .filter(|(t, _)| *t <= t_secs + 1e-9)
            .map(|(_, n)| n)
            .sum()
    }

    /// Cumulative produced-tuple timeline at one-minute granularity over
    /// `duration_secs`.
    pub fn timeline(&self, duration_secs: f64) -> Vec<(u64, u64)> {
        let minutes = (duration_secs / 60.0).ceil() as u64;
        (1..=minutes.max(1))
            .map(|m| (m, self.produced_by(m as f64 * 60.0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_fraction_and_throughput() {
        let m = RunMetrics {
            system: "RLD".into(),
            duration_secs: 100.0,
            tuples_produced: 500,
            query_work: 900.0,
            overhead_work: 100.0,
            tuples_arrived: 1000,
            tuples_processed: 800,
            ..RunMetrics::default()
        };
        assert!((m.overhead_fraction() - 0.1).abs() < 1e-12);
        assert!((m.throughput_per_sec() - 5.0).abs() < 1e-12);
        assert!((m.completion_ratio() - 0.8).abs() < 1e-12);
        assert!(m.to_string().contains("RLD"));
    }

    #[test]
    fn zero_division_guards() {
        let m = RunMetrics::default();
        assert_eq!(m.overhead_fraction(), 0.0);
        assert_eq!(m.throughput_per_sec(), 0.0);
        assert_eq!(m.completion_ratio(), 1.0);
    }

    #[test]
    fn accumulator_statistics() {
        let mut acc = MetricsAccumulator::new();
        for (i, lat) in [10.0, 20.0, 30.0, 40.0, 50.0].iter().enumerate() {
            acc.record_batch(10, *lat, 5, 60.0 * (i as f64 + 1.0));
        }
        assert_eq!(acc.num_samples(), 5);
        assert!((acc.mean_latency_ms() - 30.0).abs() < 1e-12);
        assert!(acc.percentile_latency_ms(95.0) >= 40.0);
        assert_eq!(acc.produced_by(120.0), 10);
        assert_eq!(acc.produced_by(1e9), 25);
        let timeline = acc.timeline(300.0);
        assert_eq!(timeline.len(), 5);
        assert_eq!(timeline[1], (2, 10));
        assert_eq!(timeline[4], (5, 25));
    }

    #[test]
    fn empty_accumulator() {
        let acc = MetricsAccumulator::new();
        assert_eq!(acc.mean_latency_ms(), 0.0);
        assert_eq!(acc.percentile_latency_ms(99.0), 0.0);
        assert_eq!(acc.produced_by(100.0), 0);
        assert_eq!(acc.timeline(30.0), vec![(1, 0)]);
    }

    #[test]
    fn zero_tuple_batches_are_ignored() {
        let mut acc = MetricsAccumulator::new();
        acc.record_batch(0, 99.0, 0, 1.0);
        assert_eq!(acc.num_samples(), 0);
    }
}
