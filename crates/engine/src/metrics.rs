//! Runtime metrics collected by the simulator.
//!
//! These are the measurements the paper reports in §6.5: average tuple
//! processing time (Figures 15a, 16a, 16b), the cumulative number of result
//! tuples produced over time (Figure 15b), and the runtime overhead beyond
//! query processing (classification for RLD, migrations for DYN) — plus the
//! fault-plane measurements (lost tuples, node downtime, recovery time) the
//! fault scenarios report.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Metrics of one simulated run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Name of the system under test (`"RLD"`, `"ROD"`, `"DYN"`).
    pub system: String,
    /// Simulated duration in seconds.
    pub duration_secs: f64,
    /// Number of driving tuples that arrived.
    pub tuples_arrived: u64,
    /// Number of driving tuples fully processed within the simulation
    /// horizon. Kept disjoint from [`Self::tuples_lost`]: in-flight tuples a
    /// `Lost`-semantic crash discarded are retracted from this count.
    /// Completion is estimated when a batch is accepted, so a `Replay`
    /// crash that stalls queued work past the horizon can leave those
    /// tuples (optimistically) counted.
    pub tuples_processed: u64,
    /// Number of result tuples produced within the horizon. Completion times
    /// are estimated when a batch is accepted, so results whose work a later
    /// `Lost`-semantic crash discarded may still be (slightly over)counted.
    pub tuples_produced: u64,
    /// Mean per-tuple processing time (milliseconds) over processed tuples,
    /// weighted by each batch's tuple count.
    pub avg_tuple_processing_ms: f64,
    /// 95th-percentile per-tuple processing time (milliseconds), weighted by
    /// each batch's tuple count.
    pub p95_tuple_processing_ms: f64,
    /// Cumulative result tuples at one-minute granularity: `(minute, count)`.
    pub produced_timeline: Vec<(u64, u64)>,
    /// Number of operator migrations performed (DYN only).
    pub migrations: u64,
    /// Number of logical plan switches performed (RLD only).
    pub plan_switches: u64,
    /// Total query-processing work done (cost units).
    pub query_work: f64,
    /// Total overhead work done (cost units): migrations + classification.
    pub overhead_work: f64,
    /// Mean node utilization over the run relative to nominal capacity, in
    /// `[0, 1]`. With faults this is bounded by
    /// [`Self::capacity_available_fraction`].
    pub mean_utilization: f64,
    /// Maximum backlog observed on any node (cost units).
    pub max_backlog: f64,
    /// Number of non-empty tuple batches routed through the strategy.
    pub batches: u64,
    /// Number of times the simulator had to rebuild the per-plan operator
    /// load vectors (see [`crate::stages::PlanRouter`]); at most `batches`,
    /// and far below it when the routed plan and ground truth are stable
    /// between regime switches.
    pub work_vector_recomputes: u64,
    /// Number of fault events the fault plan applied within the horizon.
    pub fault_events: u64,
    /// Total node-seconds of downtime (summed over nodes; two nodes down for
    /// 10 s each count 20).
    pub downtime_node_secs: f64,
    /// Driving tuples lost to faults: batches routed through a down node
    /// plus in-flight backlog discarded by crashes under the `Lost` recovery
    /// semantic.
    pub tuples_lost: u64,
    /// Number of batches that arrived while the strategy's placement routed
    /// them through a down node — each one is a loud re-route trigger (the
    /// batch is dropped and counted in [`Self::tuples_lost`]).
    pub reroutes: u64,
    /// Mean time (seconds) from a crash event until the first batch accepted
    /// afterwards *completed* end-to-end (acceptance requires a placement
    /// touching no down node; completion adds the batch's queueing + service
    /// latency, so post-crash backlog counts). Crashes with no accepted
    /// batch before the horizon count as `duration - crash time`. Zero when
    /// the run had no crashes.
    pub mean_recovery_secs: f64,
    /// Fraction of the nominal capacity integral that was actually available
    /// over the run (1.0 for a fault-free run). `mean_utilization` can never
    /// exceed this.
    pub capacity_available_fraction: f64,
}

impl RunMetrics {
    /// Runtime overhead as a fraction of total work.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.query_work + self.overhead_work;
        if total <= 0.0 {
            0.0
        } else {
            self.overhead_work / total
        }
    }

    /// Result-tuple throughput per second over the whole run.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.duration_secs <= 0.0 {
            0.0
        } else {
            self.tuples_produced as f64 / self.duration_secs
        }
    }

    /// Fraction of arrived tuples fully processed within the horizon.
    pub fn completion_ratio(&self) -> f64 {
        if self.tuples_arrived == 0 {
            1.0
        } else {
            self.tuples_processed as f64 / self.tuples_arrived as f64
        }
    }

    /// Fraction of arrived tuples lost to faults.
    pub fn loss_ratio(&self) -> f64 {
        if self.tuples_arrived == 0 {
            0.0
        } else {
            self.tuples_lost as f64 / self.tuples_arrived as f64
        }
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: avg={:.1}ms p95={:.1}ms produced={} migrations={} switches={} overhead={:.1}%",
            self.system,
            self.avg_tuple_processing_ms,
            self.p95_tuple_processing_ms,
            self.tuples_produced,
            self.migrations,
            self.plan_switches,
            self.overhead_fraction() * 100.0
        )?;
        if self.fault_events > 0 {
            write!(
                f,
                " lost={} reroutes={} downtime={:.0}s recovery={:.1}s",
                self.tuples_lost, self.reroutes, self.downtime_node_secs, self.mean_recovery_secs
            )?;
        }
        Ok(())
    }
}

/// Online accumulator for per-tuple latencies and the produced-tuple timeline.
///
/// Latency samples are recorded per batch but **weighted by the batch's
/// tuple count**, so the mean and percentiles are per-*tuple* statistics: a
/// 99-tuple batch influences them 99× as much as a 1-tuple batch.
#[derive(Debug, Clone, Default)]
pub struct MetricsAccumulator {
    /// `(latency_ms, tuple weight)` per recorded batch.
    samples: Vec<(f64, u64)>,
    total_weight: u64,
    produced_events: Vec<(f64, u64)>,
}

impl MetricsAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a processed batch: `tuples` driving tuples with the given
    /// per-tuple latency, producing `produced` result tuples at completion
    /// time `completion_secs`.
    pub fn record_batch(
        &mut self,
        tuples: u64,
        latency_ms: f64,
        produced: u64,
        completion_secs: f64,
    ) {
        if tuples > 0 {
            self.samples.push((latency_ms.max(0.0), tuples));
            self.total_weight += tuples;
        }
        if produced > 0 {
            self.produced_events.push((completion_secs, produced));
        }
    }

    /// Number of recorded batches (one weighted sample each).
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Total tuple weight across all recorded batches.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Tuple-weighted mean of the recorded latencies.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        let weighted_sum: f64 = self.samples.iter().map(|(l, w)| l * *w as f64).sum();
        weighted_sum / self.total_weight as f64
    }

    /// Tuple-weighted percentiles (0–100) of the recorded latencies,
    /// answered for all requested `ps` from **one** sorted pass: the p-th
    /// percentile is the smallest recorded latency whose cumulative tuple
    /// weight reaches `p%` of the total weight.
    pub fn percentiles_latency_ms(&self, ps: &[f64]) -> Vec<f64> {
        if self.samples.is_empty() {
            return vec![0.0; ps.len()];
        }
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        order.sort_by(|a, b| {
            self.samples[*a]
                .0
                .partial_cmp(&self.samples[*b].0)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ps.iter()
            .map(|p| {
                // Exact integer accumulation: "reaches p%" is decided by
                // `100 · cumulative ≥ p · total`, with the only rounding in
                // the one `p · total` product. The previous float cumulative
                // sum with an absolute 1e-9 epsilon went one sample off at
                // large total weights (the epsilon vanishes next to the
                // representation error of ~1e12-tuple cumulative sums).
                let target = p.clamp(0.0, 100.0) * self.total_weight as f64;
                let mut cumulative: u64 = 0;
                for &i in &order {
                    cumulative += self.samples[i].1;
                    if cumulative as f64 * 100.0 >= target {
                        return self.samples[i].0;
                    }
                }
                self.samples[*order.last().expect("non-empty")].0
            })
            .collect()
    }

    /// The p-th tuple-weighted percentile (0–100) of the recorded latencies.
    /// Callers needing several percentiles should use
    /// [`Self::percentiles_latency_ms`], which sorts once for all of them.
    pub fn percentile_latency_ms(&self, p: f64) -> f64 {
        self.percentiles_latency_ms(&[p])[0]
    }

    /// Total result tuples produced up to (and including) `t_secs`.
    pub fn produced_by(&self, t_secs: f64) -> u64 {
        self.produced_events
            .iter()
            .filter(|(t, _)| *t <= t_secs + 1e-9)
            .map(|(_, n)| n)
            .sum()
    }

    /// Cumulative produced-tuple timeline at one-minute granularity over
    /// `duration_secs`.
    pub fn timeline(&self, duration_secs: f64) -> Vec<(u64, u64)> {
        let minutes = (duration_secs / 60.0).ceil() as u64;
        (1..=minutes.max(1))
            .map(|m| (m, self.produced_by(m as f64 * 60.0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_fraction_and_throughput() {
        let m = RunMetrics {
            system: "RLD".into(),
            duration_secs: 100.0,
            tuples_produced: 500,
            query_work: 900.0,
            overhead_work: 100.0,
            tuples_arrived: 1000,
            tuples_processed: 800,
            tuples_lost: 100,
            ..RunMetrics::default()
        };
        assert!((m.overhead_fraction() - 0.1).abs() < 1e-12);
        assert!((m.throughput_per_sec() - 5.0).abs() < 1e-12);
        assert!((m.completion_ratio() - 0.8).abs() < 1e-12);
        assert!((m.loss_ratio() - 0.1).abs() < 1e-12);
        assert!(m.to_string().contains("RLD"));
        // Fault counters only show up in the display once faults happened.
        assert!(!m.to_string().contains("lost="));
        let faulted = RunMetrics {
            fault_events: 2,
            ..m
        };
        assert!(faulted.to_string().contains("lost=100"));
    }

    #[test]
    fn zero_division_guards() {
        let m = RunMetrics::default();
        assert_eq!(m.overhead_fraction(), 0.0);
        assert_eq!(m.throughput_per_sec(), 0.0);
        assert_eq!(m.completion_ratio(), 1.0);
        assert_eq!(m.loss_ratio(), 0.0);
    }

    #[test]
    fn accumulator_statistics() {
        let mut acc = MetricsAccumulator::new();
        for (i, lat) in [10.0, 20.0, 30.0, 40.0, 50.0].iter().enumerate() {
            acc.record_batch(10, *lat, 5, 60.0 * (i as f64 + 1.0));
        }
        assert_eq!(acc.num_samples(), 5);
        assert_eq!(acc.total_weight(), 50);
        assert!((acc.mean_latency_ms() - 30.0).abs() < 1e-12);
        assert!(acc.percentile_latency_ms(95.0) >= 40.0);
        assert_eq!(acc.produced_by(120.0), 10);
        assert_eq!(acc.produced_by(1e9), 25);
        let timeline = acc.timeline(300.0);
        assert_eq!(timeline.len(), 5);
        assert_eq!(timeline[1], (2, 10));
        assert_eq!(timeline[4], (5, 25));
    }

    #[test]
    fn latency_statistics_are_tuple_weighted_not_batch_weighted() {
        // Regression for the batch-weighted bug: one 1-tuple batch at 10 ms
        // and one 99-tuple batch at 50 ms must average to 49.6 ms (the
        // 99-tuple batch carries 99× the weight), not to the 30 ms midpoint.
        let mut acc = MetricsAccumulator::new();
        acc.record_batch(1, 10.0, 0, 1.0);
        acc.record_batch(99, 50.0, 0, 2.0);
        assert_eq!(acc.num_samples(), 2);
        assert_eq!(acc.total_weight(), 100);
        assert!(
            (acc.mean_latency_ms() - 49.6).abs() < 1e-12,
            "got {}",
            acc.mean_latency_ms()
        );
        // The median tuple sits in the big batch, far above the batch median.
        assert_eq!(acc.percentile_latency_ms(50.0), 50.0);
        // Only the bottom 1% of tuples saw the fast batch.
        assert_eq!(acc.percentile_latency_ms(1.0), 10.0);
        assert_eq!(acc.percentile_latency_ms(0.0), 10.0);
        assert_eq!(acc.percentile_latency_ms(100.0), 50.0);
    }

    #[test]
    fn percentiles_share_one_sorted_pass() {
        let mut acc = MetricsAccumulator::new();
        for (lat, w) in [(40.0, 2), (10.0, 5), (30.0, 2), (20.0, 1)] {
            acc.record_batch(w, lat, 0, 1.0);
        }
        let many = acc.percentiles_latency_ms(&[10.0, 50.0, 90.0, 99.0]);
        assert_eq!(many.len(), 4);
        for (p, v) in [10.0, 50.0, 90.0, 99.0].iter().zip(&many) {
            assert_eq!(acc.percentile_latency_ms(*p), *v);
        }
        assert!(many.windows(2).all(|w| w[0] <= w[1]), "{many:?}");
    }

    #[test]
    fn percentile_boundaries_are_exact_at_large_weights() {
        // Regression for the float-cumulative off-by-one: with two batches
        // of a trillion tuples each, p50 must stop at the *first* sample
        // (its cumulative weight is exactly 50%), but a float cumulative
        // with an absolute 1e-9 epsilon overshoots to the second — at this
        // magnitude the epsilon is far below the f64 representation error
        // of the (p/100)·total target.
        let mut acc = MetricsAccumulator::new();
        let w = 1_000_000_000_000u64;
        acc.record_batch(w, 10.0, 0, 1.0);
        acc.record_batch(w, 20.0, 0, 2.0);
        assert_eq!(acc.percentile_latency_ms(50.0), 10.0);
        assert_eq!(acc.percentile_latency_ms(50.1), 20.0);
        // And at 95% of a 10^12-tuple run split 95 / 5.
        let mut acc = MetricsAccumulator::new();
        acc.record_batch(95 * (w / 100), 1.0, 0, 1.0);
        acc.record_batch(5 * (w / 100), 2.0, 0, 2.0);
        assert_eq!(acc.percentile_latency_ms(95.0), 1.0);
    }

    #[test]
    fn degenerate_sample_counts() {
        // Zero samples → all zeros (covered in empty_accumulator); one and
        // two samples must hit the exact-rank boundaries.
        let mut one = MetricsAccumulator::new();
        one.record_batch(1, 7.0, 0, 1.0);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(one.percentile_latency_ms(p), 7.0);
        }
        let mut two = MetricsAccumulator::new();
        two.record_batch(1, 3.0, 0, 1.0);
        two.record_batch(1, 9.0, 0, 2.0);
        assert_eq!(two.percentile_latency_ms(0.0), 3.0);
        assert_eq!(two.percentile_latency_ms(50.0), 3.0);
        assert_eq!(two.percentile_latency_ms(50.0 + 1e-9), 9.0);
        assert_eq!(two.percentile_latency_ms(100.0), 9.0);
    }

    #[test]
    fn empty_accumulator() {
        let acc = MetricsAccumulator::new();
        assert_eq!(acc.mean_latency_ms(), 0.0);
        assert_eq!(acc.percentile_latency_ms(99.0), 0.0);
        assert_eq!(acc.percentiles_latency_ms(&[50.0, 95.0]), vec![0.0, 0.0]);
        assert_eq!(acc.produced_by(100.0), 0);
        assert_eq!(acc.timeline(30.0), vec![(1, 0)]);
    }

    #[test]
    fn zero_tuple_batches_are_ignored() {
        let mut acc = MetricsAccumulator::new();
        acc.record_batch(0, 99.0, 0, 1.0);
        assert_eq!(acc.num_samples(), 0);
        assert_eq!(acc.total_weight(), 0);
    }
}
