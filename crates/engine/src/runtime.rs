//! The backend-neutral runtime core.
//!
//! Two execution backends drive the same policy machinery: the discrete-tick
//! [`crate::simulator::Simulator`] (work is an abstract scalar, queueing is
//! modelled) and the threaded executor in `rld-exec` (real tuples flow
//! through real operator state on worker threads). Everything that *defines
//! the runtime's behaviour* — as opposed to how work is costed — lives here,
//! so the two backends can never diverge on policy:
//!
//! * [`DistributionStrategy`] dispatch order (fault notification →
//!   adaptation → routing),
//! * the [`StatisticsMonitor`] sampling/smoothing of the ground truth,
//! * [`ArrivalProcess`] seeding and Poisson sampling,
//! * [`PlanRouter`] plan routing with cached derived state,
//! * [`FaultPlan`] application bookkeeping (event cursor, crash/recovery
//!   accounting), and
//! * [`MetricsAccumulator`] → [`RunMetrics`] assembly.
//!
//! A backend owns only what is genuinely backend-specific — the simulator
//! its [`crate::node::SimNode`] queue model, the executor its worker threads
//! and channels — and reports those totals through [`BackendTotals`] when it
//! asks the core to [`finish`](RuntimeCore::finish) the run.
//!
//! With [`RuntimeCore::with_trace`] the core additionally records every
//! per-batch routing decision and every migration, so tests can assert that
//! both backends make bit-identical policy decisions under the same seed.

use crate::faults::{FaultEvent, FaultPlan};
use crate::metrics::{MetricsAccumulator, RunMetrics};
use crate::monitor::StatisticsMonitor;
use crate::simulator::SimConfig;
use crate::stages::{ArrivalProcess, PlanRouter, RoutedBatch};
use crate::strategy::{DistributionStrategy, RuntimeContext};
use rld_common::{NodeId, OperatorId, Query, Result, StatsSnapshot};
use rld_physical::{Cluster, MigrationDecision};
use rld_query::CostModel;

/// One recorded per-batch routing decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteRecord {
    /// 1-based index of the non-empty batch this decision routed.
    pub batch: u64,
    /// Virtual time of the batch's tick.
    pub t_secs: f64,
    /// Signature of the logical plan the batch flowed through.
    pub plan: String,
}

/// One recorded operator migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Virtual time of the migration's tick.
    pub t_secs: f64,
    /// The migrated operator.
    pub operator: OperatorId,
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
}

/// The policy decisions a run made, recorded when tracing is enabled —
/// the cross-backend agreement oracle: a fault-free simulator run and
/// executor run with the same seed must produce identical traces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTrace {
    /// Every per-batch routing decision, in batch order.
    pub routes: Vec<RouteRecord>,
    /// Every migration decision, in decision order.
    pub migrations: Vec<MigrationRecord>,
}

/// The backend-specific totals a backend reports when finishing a run: how
/// much work was done and how busy the nodes were, in whatever unit the
/// backend measures work (abstract cost units for the simulator, wall
/// milliseconds of busy time for the threaded executor).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackendTotals {
    /// Driving tuples fully processed within the horizon (after any crash
    /// retraction the backend applies).
    pub tuples_processed: u64,
    /// Total query-processing work done.
    pub query_work: f64,
    /// Total overhead work done (migrations + classification).
    pub overhead_work: f64,
    /// Mean node utilization over the run, in `[0, 1]`.
    pub mean_utilization: f64,
    /// Maximum backlog observed on any node.
    pub max_backlog: f64,
    /// The nominal capacity integral of the run (denominator of the
    /// availability fraction); zero disables the fraction.
    pub capacity_total: f64,
}

/// The backend-neutral control plane of one run: strategy dispatch context,
/// monitor, arrivals, plan routing, fault cursor and metrics accumulation.
pub struct RuntimeCore {
    query: Query,
    cost_model: CostModel,
    config: SimConfig,
    faults: FaultPlan,
    monitor: StatisticsMonitor,
    monitored: StatsSnapshot,
    arrivals: ArrivalProcess,
    router: PlanRouter,
    acc: MetricsAccumulator,
    fault_idx: usize,
    tuples_arrived: u64,
    batches: u64,
    faults_applied: u64,
    tuples_lost: f64,
    reroutes: u64,
    downtime_node_secs: f64,
    available_capacity_integral: f64,
    pending_recoveries: Vec<f64>,
    recovery_durations: Vec<f64>,
    trace: Option<RunTrace>,
}

impl RuntimeCore {
    /// Create the core for one run of one strategy. Validates the
    /// configuration, the query, and the fault plan against the cluster
    /// size; seeds the arrival process per (seed, strategy name) exactly as
    /// every backend must.
    pub fn new(
        query: Query,
        num_nodes: usize,
        config: SimConfig,
        faults: FaultPlan,
        strategy_name: &str,
    ) -> Result<Self> {
        config.validate()?;
        query.validate()?;
        faults.validate_for(num_nodes)?;
        let monitor = StatisticsMonitor::new(
            query.default_stats(),
            config.monitor_period_secs,
            config.monitor_alpha,
        );
        let monitored = monitor.current().clone();
        let arrivals = ArrivalProcess::new(config.seed, strategy_name);
        Ok(Self {
            cost_model: CostModel::new(query.clone()),
            query,
            config,
            faults,
            monitor,
            monitored,
            arrivals,
            router: PlanRouter::new(),
            acc: MetricsAccumulator::new(),
            fault_idx: 0,
            tuples_arrived: 0,
            batches: 0,
            faults_applied: 0,
            tuples_lost: 0.0,
            reroutes: 0,
            downtime_node_secs: 0.0,
            available_capacity_integral: 0.0,
            pending_recoveries: Vec::new(),
            recovery_durations: Vec::new(),
            trace: None,
        })
    }

    /// Enable decision tracing: every routing and migration decision is
    /// recorded into the [`RunTrace`] returned by [`Self::finish`].
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(RunTrace::default());
        self
    }

    /// The query under execution.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The cost model over the query.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// The run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The fault plan applied during the run.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The strategy-dispatch context at virtual time `t`.
    pub fn context<'a>(&'a self, t_secs: f64, cluster: &'a Cluster) -> RuntimeContext<'a> {
        RuntimeContext {
            t_secs,
            query: &self.query,
            cost_model: &self.cost_model,
            cluster,
        }
    }

    /// The next fault event due by the start of the tick at `t`, advancing
    /// the event cursor. Backends call this in a loop and apply each event
    /// to their node representation.
    pub fn next_fault_due(&mut self, t_secs: f64) -> Option<FaultEvent> {
        let events = self.faults.events();
        if self.fault_idx < events.len() && events[self.fault_idx].at_secs <= t_secs + 1e-9 {
            let event = events[self.fault_idx];
            self.fault_idx += 1;
            self.faults_applied += 1;
            Some(event)
        } else {
            None
        }
    }

    /// Account a crash the backend just applied: `tuples_lost` in-flight
    /// tuples were discarded, and the crash opens a recovery window that the
    /// next accepted batch's completion closes.
    pub fn note_crash(&mut self, t_secs: f64, tuples_lost: f64) {
        self.tuples_lost += tuples_lost;
        self.pending_recoveries.push(t_secs);
    }

    /// Offer the ground truth at `t` to the statistics monitor; the
    /// monitored snapshot is refreshed only when the monitor sampled.
    pub fn observe(&mut self, t_secs: f64, truth: &StatsSnapshot) {
        if self.monitor.observe(t_secs, truth) {
            self.monitored.clone_from(self.monitor.current());
        }
    }

    /// The monitor's (stale, smoothed) view of the statistics.
    pub fn monitored(&self) -> &StatsSnapshot {
        &self.monitored
    }

    /// Sample the driving-stream arrivals of one tick at the ground truth's
    /// input rate, counting the tick's batch when it is non-empty.
    pub fn sample_arrivals(&mut self, truth: &StatsSnapshot) -> u64 {
        let rate = self.cost_model.input_rate(self.query.driving_stream, truth);
        let n = self.arrivals.sample_batch(rate, self.config.tick_secs);
        if n > 0 {
            self.tuples_arrived += n;
            self.batches += 1;
        }
        n
    }

    /// Route one non-empty batch through the strategy: ask it for the
    /// logical plan and derive (or reuse) the per-node work vectors. Records
    /// the decision when tracing.
    pub fn route(
        &mut self,
        strategy: &mut dyn DistributionStrategy,
        truth: &StatsSnapshot,
        num_nodes: usize,
        t_secs: f64,
    ) -> Result<&RoutedBatch> {
        self.router.route(
            strategy,
            &self.cost_model,
            &self.monitored,
            truth,
            num_nodes,
        )?;
        if let Some(trace) = self.trace.as_mut() {
            trace.routes.push(RouteRecord {
                batch: self.batches,
                t_secs,
                plan: self
                    .router
                    .current_plan()
                    .map(|p| p.signature())
                    .unwrap_or_default(),
            });
        }
        Ok(self.router.current())
    }

    /// The logical plan of the most recent [`Self::route`] call, if any —
    /// a shared handle, so a backend can execute it without cloning.
    pub fn current_plan(&self) -> Option<&std::sync::Arc<rld_query::LogicalPlan>> {
        self.router.current_plan()
    }

    /// Account a batch the backend dropped because its pipeline crossed a
    /// down node — the fault plane's loud re-route signal.
    pub fn note_dropped_batch(&mut self, n_tuples: u64) {
        self.reroutes += 1;
        self.tuples_lost += n_tuples as f64;
    }

    /// Account tuples lost outside the drop path (e.g. discarded by a
    /// worker that was down when the envelope arrived).
    pub fn note_lost(&mut self, tuples: f64) {
        self.tuples_lost += tuples;
    }

    /// Record migration decisions into the trace (the backend charges their
    /// cost in its own units).
    pub fn note_migrations(&mut self, t_secs: f64, decisions: &[MigrationDecision]) {
        if let Some(trace) = self.trace.as_mut() {
            for d in decisions {
                trace.migrations.push(MigrationRecord {
                    t_secs,
                    operator: d.operator,
                    from: d.from,
                    to: d.to,
                });
            }
        }
    }

    /// Record one accepted batch: `tuples` driving tuples with the given
    /// per-tuple latency, producing `produced` result tuples at
    /// `completion_secs`. The first accepted batch after a crash closes
    /// every pending crash-recovery window at its completion time.
    pub fn record_batch(
        &mut self,
        tuples: u64,
        latency_ms: f64,
        produced: u64,
        completion_secs: f64,
    ) {
        self.acc
            .record_batch(tuples, latency_ms, produced, completion_secs);
        for crash_at in self.pending_recoveries.drain(..) {
            self.recovery_durations.push(completion_secs - crash_at);
        }
    }

    /// Account one node's availability over one tick of `dt` seconds.
    /// Backends call this per node, in node order, every tick.
    pub fn account_node(&mut self, dt_secs: f64, up: bool, effective_capacity: f64) {
        if !up {
            self.downtime_node_secs += dt_secs;
        }
        self.available_capacity_integral += effective_capacity * dt_secs;
    }

    /// Tuple-weighted latency percentiles (0–100) of everything recorded so
    /// far, answered from one sorted pass.
    pub fn latency_percentiles(&self, ps: &[f64]) -> Vec<f64> {
        self.acc.percentiles_latency_ms(ps)
    }

    /// Number of non-empty batches so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Driving tuples arrived so far.
    pub fn tuples_arrived(&self) -> u64 {
        self.tuples_arrived
    }

    /// Assemble the run's metrics. Crashes no accepted batch ever completed
    /// after count as unrecovered through the end of the horizon.
    pub fn finish(
        mut self,
        strategy: &dyn DistributionStrategy,
        totals: BackendTotals,
    ) -> (RunMetrics, Option<RunTrace>) {
        let duration = self.config.duration_secs;
        for crash_at in self.pending_recoveries.drain(..) {
            self.recovery_durations.push(duration - crash_at);
        }
        let metrics = RunMetrics {
            system: strategy.name().to_string(),
            duration_secs: duration,
            tuples_arrived: self.tuples_arrived,
            tuples_processed: totals.tuples_processed,
            tuples_produced: self.acc.produced_by(duration),
            avg_tuple_processing_ms: self.acc.mean_latency_ms(),
            p95_tuple_processing_ms: self.acc.percentiles_latency_ms(&[95.0])[0],
            produced_timeline: self.acc.timeline(duration),
            migrations: strategy.migrations(),
            plan_switches: strategy.plan_switches(),
            query_work: totals.query_work,
            overhead_work: totals.overhead_work,
            mean_utilization: totals.mean_utilization,
            max_backlog: totals.max_backlog,
            batches: self.batches,
            work_vector_recomputes: self.router.recomputes(),
            fault_events: self.faults_applied,
            downtime_node_secs: self.downtime_node_secs,
            tuples_lost: self.tuples_lost.round() as u64,
            reroutes: self.reroutes,
            mean_recovery_secs: if self.recovery_durations.is_empty() {
                0.0
            } else {
                self.recovery_durations.iter().sum::<f64>() / self.recovery_durations.len() as f64
            },
            capacity_available_fraction: if totals.capacity_total > 0.0 {
                (self.available_capacity_integral / totals.capacity_total).clamp(0.0, 1.0)
            } else {
                1.0
            },
        };
        (metrics, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::RecoverySemantic;
    use crate::strategies::RodStrategy;
    use rld_physical::RodPlanner;

    fn fixture() -> (Query, Cluster, RodStrategy) {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(3, 1e9).unwrap();
        let plan = RodPlanner::new()
            .plan(&q, &q.default_stats(), &cluster, 1.0)
            .unwrap();
        let rod = RodStrategy::new(plan.logical, plan.physical);
        (q, cluster, rod)
    }

    #[test]
    fn core_validates_its_inputs() {
        let (q, _, _) = fixture();
        let bad = SimConfig {
            tick_secs: 0.0,
            ..SimConfig::default()
        };
        assert!(RuntimeCore::new(q.clone(), 3, bad, FaultPlan::none(), "ROD").is_err());
        let plan = FaultPlan::node_crash(NodeId::new(9), 1.0, 2.0, RecoverySemantic::Lost).unwrap();
        assert!(RuntimeCore::new(q.clone(), 3, SimConfig::default(), plan, "ROD").is_err());
        assert!(RuntimeCore::new(q, 3, SimConfig::default(), FaultPlan::none(), "ROD").is_ok());
    }

    #[test]
    fn fault_cursor_yields_due_events_once() {
        let (q, _, _) = fixture();
        let plan =
            FaultPlan::node_crash(NodeId::new(0), 5.0, 10.0, RecoverySemantic::Lost).unwrap();
        let mut core = RuntimeCore::new(q, 3, SimConfig::default(), plan, "ROD").unwrap();
        assert!(core.next_fault_due(0.0).is_none());
        let crash = core.next_fault_due(5.0).unwrap();
        assert_eq!(crash.at_secs, 5.0);
        assert!(core.next_fault_due(5.0).is_none(), "recovery not due yet");
        let recover = core.next_fault_due(10.0).unwrap();
        assert_eq!(recover.at_secs, 10.0);
        assert!(core.next_fault_due(1e9).is_none());
    }

    #[test]
    fn trace_records_routes_and_migrations() {
        let (q, _cluster, mut rod) = fixture();
        let mut core =
            RuntimeCore::new(q.clone(), 3, SimConfig::default(), FaultPlan::none(), "ROD")
                .unwrap()
                .with_trace();
        let truth = q.default_stats();
        let n = loop {
            let n = core.sample_arrivals(&truth);
            if n > 0 {
                break n;
            }
        };
        assert!(n > 0);
        core.route(&mut rod, &truth, 3, 0.0).unwrap();
        core.note_migrations(
            1.0,
            &[MigrationDecision {
                operator: OperatorId::new(0),
                from: NodeId::new(0),
                to: NodeId::new(1),
                state_bytes: 64,
            }],
        );
        let (_, trace) = core.finish(&rod, BackendTotals::default());
        let trace = trace.expect("trace enabled");
        assert_eq!(trace.routes.len(), 1);
        assert_eq!(trace.routes[0].batch, 1);
        assert!(!trace.routes[0].plan.is_empty());
        assert_eq!(trace.migrations.len(), 1);
        assert_eq!(trace.migrations[0].operator, OperatorId::new(0));
    }

    #[test]
    fn recovery_windows_close_at_batch_completion() {
        let (q, _, rod) = fixture();
        let mut core = RuntimeCore::new(
            q,
            3,
            SimConfig {
                duration_secs: 100.0,
                ..SimConfig::default()
            },
            FaultPlan::none(),
            "ROD",
        )
        .unwrap();
        core.note_crash(10.0, 5.0);
        core.record_batch(10, 2000.0, 3, 14.0);
        core.note_crash(50.0, 0.0);
        let (m, _) = core.finish(&rod, BackendTotals::default());
        // First crash recovered at 14 s (4 s), second never (100 - 50 = 50 s).
        assert!((m.mean_recovery_secs - 27.0).abs() < 1e-9, "{m:?}");
        assert_eq!(m.tuples_lost, 5);
        assert_eq!(m.fault_events, 0);
    }
}
