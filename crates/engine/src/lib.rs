//! # rld-engine
//!
//! A discrete-time distributed stream processing simulator standing in for
//! the paper's D-CAPE cluster deployment (§6).
//!
//! The simulator advances in fixed ticks. Each tick it
//!
//! 1. asks the workload for the ground-truth statistics (selectivities,
//!    input rates) at the current simulated time,
//! 2. lets the *distribution strategy* under test adapt its placement
//!    (DYN migrates on overload, HYB only outside every robust region,
//!    RLD/ROD never), charging any migrations as overhead work,
//! 3. generates the driving-stream tuple batch for the tick,
//! 4. routes the batch through the strategy's logical plan for the
//!    monitored statistics and charges each cluster node the per-operator
//!    work implied by that plan at the true statistics, and
//! 5. drains each node at its capacity, tracking queueing backlogs.
//!
//! Per-tuple processing time is the sum, along the plan's operator pipeline,
//! of each hosting node's queueing delay plus service time — so an overloaded
//! node shows up as exactly the latency blow-up the paper reports for ROD and
//! DYN under high fluctuation ratios (Figures 15–16). Migration (DYN/HYB) and
//! plan-classification (RLD/HYB) overheads are charged as extra node work and
//! reported separately (the §6.5 runtime-overhead comparison).
//!
//! Modules:
//! * [`node::SimNode`] — a machine with capacity, backlog, work counters and
//!   a dynamic availability state (up / down / degraded).
//! * [`faults::FaultPlan`] — deterministic schedules of node crashes,
//!   recoveries and straggler ramps, applied at tick granularity.
//! * [`monitor::StatisticsMonitor`] — periodic, smoothed statistics sampling.
//! * [`classifier::OnlineClassifier`] — the QueryMesh-style per-batch plan
//!   selector used by RLD and HYB.
//! * [`index::ClassifierIndex`] — per-dimension interval-stabbing bitsets
//!   answering region containment in `O(dims)` per batch.
//! * [`strategy::DistributionStrategy`] — the pluggable policy seam.
//! * [`strategies`] — the RLD / ROD / DYN / HYB implementations.
//! * [`stages`] — the composable stages of the tick loop (arrivals, cached
//!   plan routing, work accounting, drain).
//! * [`runtime::RuntimeCore`] — the backend-neutral control plane (strategy
//!   dispatch, monitoring, fault cursor, metrics assembly) shared between
//!   this simulator and the threaded executor in `rld-exec`.
//! * [`simulator::Simulator`] — the tick loop driving a strategy.
//! * [`metrics::RunMetrics`] — the measurements reported by every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classifier;
pub mod faults;
pub mod index;
pub mod metrics;
pub mod monitor;
pub mod node;
pub mod runtime;
pub mod simulator;
pub mod stages;
pub mod strategies;
pub mod strategy;

pub use classifier::OnlineClassifier;
pub use faults::{FaultEvent, FaultKind, FaultPlan, RecoverySemantic};
pub use index::ClassifierIndex;
pub use metrics::{MetricsAccumulator, RunMetrics};
pub use monitor::StatisticsMonitor;
pub use node::SimNode;
pub use runtime::{BackendTotals, MigrationRecord, RouteRecord, RunTrace, RuntimeCore};
pub use simulator::{SimConfig, Simulator};
pub use stages::{ArrivalProcess, PlanRouter, RoutedBatch};
pub use strategies::{DynStrategy, HybridStrategy, RldStrategy, RodStrategy};
pub use strategy::{DistributionStrategy, RuntimeContext};
