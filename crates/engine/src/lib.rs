//! # rld-engine
//!
//! A discrete-time distributed stream processing simulator standing in for
//! the paper's D-CAPE cluster deployment (§6).
//!
//! The simulator advances in fixed ticks. Each tick it
//!
//! 1. asks the workload for the ground-truth statistics (selectivities,
//!    input rates) at the current simulated time,
//! 2. generates the driving-stream tuple batch for the tick,
//! 3. lets the *system under test* pick the logical plan for the batch
//!    (RLD's online classifier, or the fixed plan of ROD / DYN) and, for DYN,
//!    decide operator migrations,
//! 4. charges each cluster node the per-operator work implied by the chosen
//!    plan at the true statistics, and
//! 5. drains each node at its capacity, tracking queueing backlogs.
//!
//! Per-tuple processing time is the sum, along the plan's operator pipeline,
//! of each hosting node's queueing delay plus service time — so an overloaded
//! node shows up as exactly the latency blow-up the paper reports for ROD and
//! DYN under high fluctuation ratios (Figures 15–16). Migration (DYN) and
//! plan-classification (RLD) overheads are charged as extra node work and
//! reported separately (the §6.5 runtime-overhead comparison).
//!
//! Modules:
//! * [`node::SimNode`] — a machine with capacity, backlog and work counters.
//! * [`monitor::StatisticsMonitor`] — periodic, smoothed statistics sampling.
//! * [`classifier::OnlineClassifier`] — the QueryMesh-style per-batch plan
//!   selector used by RLD.
//! * [`system::SystemUnderTest`] — RLD / ROD / DYN deployments.
//! * [`simulator::Simulator`] — the tick loop.
//! * [`metrics::RunMetrics`] — the measurements reported by every run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classifier;
pub mod metrics;
pub mod monitor;
pub mod node;
pub mod simulator;
pub mod system;

pub use classifier::OnlineClassifier;
pub use metrics::RunMetrics;
pub use monitor::StatisticsMonitor;
pub use node::SimNode;
pub use simulator::{SimConfig, Simulator};
pub use system::SystemUnderTest;
