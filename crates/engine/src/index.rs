//! Per-dimension interval-stabbing index over a robust logical solution.
//!
//! The online classifier must answer, for every tuple batch, "which robust
//! regions contain the current statistics point?". The seed implementation
//! scanned `entries × regions` per batch; this index answers in `O(dims)`
//! bitset words instead.
//!
//! Construction flattens every region of every solution entry into one list
//! and builds, **per dimension, per grid index**, a bitset of the regions
//! whose interval along that dimension contains the index (dense interval
//! stabbing — the grid is discrete and small per axis, so the table is tiny:
//! `dims × steps × ⌈regions/64⌉` words). A point is covered by exactly the
//! regions in the AND of its `dims` bitsets; iterating the set bits yields
//! candidate regions in flattening order, which is solution-entry order — the
//! order the classifier's tie-breaking semantics are defined over.

use rld_logical::RobustLogicalSolution;
use rld_paramspace::{ParameterSpace, Region};
use rld_query::LogicalPlan;
use std::sync::Arc;

/// Bitset-based region containment index for one (space, solution) pair.
#[derive(Debug, Clone)]
pub struct ClassifierIndex {
    /// Every robust region of the solution, flattened in entry order.
    regions: Vec<Region>,
    /// Flattened region index → solution entry index.
    region_entry: Vec<usize>,
    /// Per entry: the `[start, end)` span of its regions in `regions`.
    entry_regions: Vec<(usize, usize)>,
    /// Per entry: exact union volume of its robust region (for the
    /// largest-region tie-break without recomputation).
    entry_volume: Vec<u128>,
    /// Per entry: the plan, shared so classification never deep-clones.
    plans: Vec<Arc<LogicalPlan>>,
    /// `tables[dim][grid_index]` = bitset (blocks of 64) over flattened
    /// regions whose interval along `dim` contains `grid_index`.
    tables: Vec<Vec<Vec<u64>>>,
    /// Number of 64-bit blocks per bitset.
    blocks: usize,
}

impl ClassifierIndex {
    /// Build the index for a solution over a space.
    pub fn build(space: &ParameterSpace, solution: &RobustLogicalSolution) -> Self {
        let mut regions = Vec::new();
        let mut region_entry = Vec::new();
        let mut entry_regions = Vec::with_capacity(solution.len());
        let mut entry_volume = Vec::with_capacity(solution.len());
        let mut plans = Vec::with_capacity(solution.len());
        for (e, entry) in solution.entries().iter().enumerate() {
            let start = regions.len();
            for r in &entry.regions {
                regions.push(r.clone());
                region_entry.push(e);
            }
            entry_regions.push((start, regions.len()));
            entry_volume.push(entry.volume());
            plans.push(Arc::new(entry.plan.clone()));
        }
        let blocks = regions.len().div_ceil(64).max(1);
        let tables = space
            .dimensions()
            .iter()
            .enumerate()
            .map(|(d, dim)| {
                let mut per_index = vec![vec![0u64; blocks]; dim.steps];
                for (r, region) in regions.iter().enumerate() {
                    let span = region.lo[d]..=region.hi[d].min(dim.steps - 1);
                    for bits in &mut per_index[span] {
                        bits[r / 64] |= 1u64 << (r % 64);
                    }
                }
                per_index
            })
            .collect();
        Self {
            regions,
            region_entry,
            entry_regions,
            entry_volume,
            plans,
            tables,
            blocks,
        }
    }

    /// Number of indexed entries (plans).
    pub fn num_entries(&self) -> usize {
        self.plans.len()
    }

    /// Number of indexed regions across all entries.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The flattened regions, in entry order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The entry index owning flattened region `r`.
    pub fn entry_of_region(&self, r: usize) -> usize {
        self.region_entry[r]
    }

    /// The `[start, end)` span of entry `e`'s regions in [`Self::regions`].
    pub fn regions_of_entry(&self, e: usize) -> (usize, usize) {
        self.entry_regions[e]
    }

    /// Exact union volume of entry `e`'s robust region.
    pub fn entry_volume(&self, e: usize) -> u128 {
        self.entry_volume[e]
    }

    /// The (shared) plan of entry `e`.
    pub fn plan(&self, e: usize) -> &Arc<LogicalPlan> {
        &self.plans[e]
    }

    /// Whether any indexed region contains the grid point, in `O(dims)` word
    /// operations and with zero allocation.
    pub fn covers(&self, indices: &[usize]) -> bool {
        debug_assert_eq!(indices.len(), self.tables.len());
        if self.regions.is_empty() {
            return false;
        }
        for b in 0..self.blocks {
            if self.stab_block(indices, b) != 0 {
                return true;
            }
        }
        false
    }

    /// Append the flattened indices of every region containing the grid
    /// point to `out` (cleared first), in ascending — i.e. solution-entry —
    /// order. Allocation-free once `out`'s capacity has warmed up.
    pub fn covering_regions(&self, indices: &[usize], out: &mut Vec<usize>) {
        debug_assert_eq!(indices.len(), self.tables.len());
        out.clear();
        for b in 0..self.blocks {
            let mut acc = self.stab_block(indices, b);
            while acc != 0 {
                let bit = acc.trailing_zeros() as usize;
                out.push(b * 64 + bit);
                acc &= acc - 1;
            }
        }
    }

    /// AND of the per-dimension stab bitsets, one block at a time.
    fn stab_block(&self, indices: &[usize], block: usize) -> u64 {
        let mut acc = u64::MAX;
        for (table, &x) in self.tables.iter().zip(indices) {
            // A point outside a dimension's grid (projection clamps, so this
            // cannot normally happen) stabs nothing.
            let Some(bits) = table.get(x) else { return 0 };
            acc &= bits[block];
            if acc == 0 {
                return 0;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{OperatorId, StatKey, StatisticEstimate, StatsSnapshot, UncertaintyLevel};
    use rld_paramspace::GridPoint;

    fn space_nd(dims: usize, steps: usize) -> ParameterSpace {
        let estimates: Vec<_> = (0..dims)
            .map(|i| {
                StatisticEstimate::new(
                    StatKey::Selectivity(OperatorId::new(i)),
                    0.5,
                    UncertaintyLevel::new(2),
                )
            })
            .collect();
        ParameterSpace::from_estimates(&estimates, StatsSnapshot::new(), steps).unwrap()
    }

    fn plan(v: &[usize]) -> LogicalPlan {
        LogicalPlan::new(v.iter().map(|i| OperatorId::new(*i)).collect())
    }

    #[test]
    fn index_agrees_with_linear_scan() {
        let space = space_nd(3, 7);
        let mut solution = RobustLogicalSolution::new();
        solution.add(plan(&[0, 1]), Region::new(vec![0, 0, 0], vec![3, 6, 2]));
        solution.add(plan(&[1, 0]), Region::new(vec![2, 2, 2], vec![6, 4, 6]));
        solution.add(plan(&[0, 1]), Region::new(vec![5, 5, 0], vec![6, 6, 1]));
        let index = ClassifierIndex::build(&space, &solution);
        assert_eq!(index.num_entries(), 2);
        assert_eq!(index.num_regions(), 3);
        let mut out = Vec::new();
        for p in space.iter_grid() {
            index.covering_regions(&p.indices, &mut out);
            let expected: Vec<usize> = index
                .regions()
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&p))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(out, expected, "mismatch at {p}");
            assert_eq!(index.covers(&p.indices), !expected.is_empty());
        }
    }

    #[test]
    fn index_handles_more_than_64_regions() {
        let space = space_nd(2, 9);
        let mut solution = RobustLogicalSolution::new();
        // 81 single-cell regions across 3 plans: spills into a second block.
        for (i, p) in space.iter_grid().enumerate() {
            solution.add(
                plan(&[i % 3, (i % 3 + 1) % 3]),
                Region::new(p.indices.clone(), p.indices.clone()),
            );
        }
        let index = ClassifierIndex::build(&space, &solution);
        assert!(index.num_regions() > 64);
        let mut out = Vec::new();
        for p in space.iter_grid() {
            index.covering_regions(&p.indices, &mut out);
            assert_eq!(out.len(), 1, "every cell is claimed exactly once");
            assert!(index.regions()[out[0]].contains(&p));
        }
    }

    #[test]
    fn empty_solution_covers_nothing() {
        let space = space_nd(2, 5);
        let index = ClassifierIndex::build(&space, &RobustLogicalSolution::new());
        assert_eq!(index.num_entries(), 0);
        assert!(!index.covers(&GridPoint::new(vec![2, 2]).indices));
    }

    #[test]
    fn entry_metadata_is_consistent() {
        let space = space_nd(2, 9);
        let mut solution = RobustLogicalSolution::new();
        solution.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![4, 8]));
        solution.add(plan(&[1, 0]), Region::new(vec![5, 0], vec![8, 8]));
        solution.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![1, 1]));
        let index = ClassifierIndex::build(&space, &solution);
        assert_eq!(index.regions_of_entry(0), (0, 2));
        assert_eq!(index.regions_of_entry(1), (2, 3));
        assert_eq!(index.entry_of_region(2), 1);
        assert_eq!(index.entry_volume(0), 45); // 5×9 union with the 2×2 inside
        assert_eq!(*index.plan(1).as_ref(), plan(&[1, 0]));
    }
}
