//! The pluggable distribution-strategy seam of the runtime.
//!
//! The paper's §6.5 comparison pits three deployment policies against each
//! other (RLD, ROD, DYN). Early versions of this simulator hard-wired them as
//! a closed enum inside the tick loop, which meant every new policy or
//! workload scenario required editing the engine core. [`DistributionStrategy`]
//! is the open seam instead: the simulator only ever talks to the trait, so a
//! new policy (see [`crate::strategies::HybridStrategy`] for the proof) plugs
//! in without touching the loop.
//!
//! A strategy answers three questions per tick:
//!
//! 1. **Routing** — which logical plan should this batch flow through, given
//!    the monitor's (stale, smoothed) view of the statistics?
//! 2. **Placement** — which node hosts which operator right now? The
//!    placement may only change through [`DistributionStrategy::maybe_migrate`];
//!    the simulator watches [`DistributionStrategy::physical`] structurally to
//!    invalidate its cached per-plan load vectors.
//! 3. **Overheads** — what does the policy itself cost (plan classification,
//!    operator migrations)? The simulator charges these as node work.

use rld_common::{Query, Result, StatsSnapshot};
use rld_physical::{Cluster, ClusterView, MigrationDecision, PhysicalPlan};
use rld_query::{CostModel, LogicalPlan};
use std::sync::Arc;

/// Everything a strategy may consult when deciding whether to adapt its
/// placement at a point in simulated time. Bundled so that growing the
/// runtime surface does not ripple through every strategy signature.
pub struct RuntimeContext<'a> {
    /// Current simulated time in seconds.
    pub t_secs: f64,
    /// The continuous query being executed.
    pub query: &'a Query,
    /// The cost model used to estimate per-operator loads.
    pub cost_model: &'a CostModel,
    /// The cluster the query is deployed on.
    pub cluster: &'a Cluster,
}

/// A deployment policy the simulator can exercise: how tuple batches are
/// routed onto logical plans and how (or whether) the operator placement
/// adapts at runtime.
///
/// Implementations must be deterministic: the same sequence of calls with the
/// same inputs must produce the same decisions, so that simulation runs are
/// reproducible per seed. The simulator observes placement changes directly
/// through [`Self::physical`] (its load-vector cache compares the plan
/// itself), so migrating strategies need no extra bookkeeping beyond applying
/// their decisions.
pub trait DistributionStrategy {
    /// The policy's short name as used in the paper's figures (e.g. `"RLD"`).
    fn name(&self) -> &str;

    /// The current operator placement.
    fn physical(&self) -> &PhysicalPlan;

    /// The logical plan the next batch should be routed through, given the
    /// monitored statistics. Returned as a shared handle so the per-batch
    /// hot path never deep-clones a plan. Returns `None` only when the
    /// strategy has no plan at all (an empty robust solution).
    fn plan_for_batch(&mut self, monitored: &StatsSnapshot) -> Option<Arc<LogicalPlan>>;

    /// Per-batch routing overhead as a fraction of the batch's query work
    /// (the paper measured ≈ 2% for RLD's classifier; zero for static
    /// policies).
    fn classification_overhead(&self) -> f64 {
        0.0
    }

    /// Number of times the routed logical plan changed between consecutive
    /// batches.
    fn plan_switches(&self) -> u64 {
        0
    }

    /// Total operator migrations performed so far.
    fn migrations(&self) -> u64 {
        0
    }

    /// Give the strategy a chance to adapt its placement. Returned decisions
    /// must already be applied to [`Self::physical`]; the simulator only
    /// charges their cost.
    ///
    /// The default is the static policies' answer: never migrate.
    fn maybe_migrate(
        &mut self,
        _ctx: &RuntimeContext<'_>,
        _monitored: &StatsSnapshot,
    ) -> Result<Vec<MigrationDecision>> {
        Ok(Vec::new())
    }

    /// Notify the strategy that the cluster's availability changed (a node
    /// crashed, recovered, degraded, or was restored by the fault plane).
    /// Called once per tick in which at least one fault event fired, with
    /// the up-to-date availability `view`. As with
    /// [`Self::maybe_migrate`], returned decisions must already be applied
    /// to [`Self::physical`]; the simulator only charges their cost.
    ///
    /// The default is the static policies' answer — ride the fault out
    /// without reacting (RLD and ROD keep their placement and simply lose
    /// the tuples routed through a dead node). Adaptive strategies (DYN,
    /// HYB) fail over here by migrating operators off dead nodes.
    fn on_cluster_change(
        &mut self,
        _ctx: &RuntimeContext<'_>,
        _view: &ClusterView,
        _monitored: &StatsSnapshot,
    ) -> Result<Vec<MigrationDecision>> {
        Ok(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::NodeId;

    /// A minimal strategy exercising every trait default.
    struct Fixed {
        logical: Arc<LogicalPlan>,
        physical: PhysicalPlan,
    }

    impl DistributionStrategy for Fixed {
        fn name(&self) -> &str {
            "FIXED"
        }
        fn physical(&self) -> &PhysicalPlan {
            &self.physical
        }
        fn plan_for_batch(&mut self, _monitored: &StatsSnapshot) -> Option<Arc<LogicalPlan>> {
            Some(Arc::clone(&self.logical))
        }
    }

    #[test]
    fn trait_defaults_describe_a_static_policy() {
        let q = Query::q1_stock_monitoring();
        let mapping: Vec<NodeId> = (0..q.num_operators()).map(|_| NodeId::new(0)).collect();
        let physical = PhysicalPlan::from_mapping(&q, &mapping, 1).unwrap();
        let mut s = Fixed {
            logical: Arc::new(LogicalPlan::identity(&q)),
            physical,
        };
        assert_eq!(s.classification_overhead(), 0.0);
        assert_eq!(s.plan_switches(), 0);
        assert_eq!(s.migrations(), 0);
        let cm = CostModel::new(q.clone());
        let cluster = Cluster::homogeneous(1, 1.0).unwrap();
        let ctx = RuntimeContext {
            t_secs: 0.0,
            query: &q,
            cost_model: &cm,
            cluster: &cluster,
        };
        assert!(s
            .maybe_migrate(&ctx, &q.default_stats())
            .unwrap()
            .is_empty());
        let mut view = ClusterView::all_up(&cluster);
        view.set_up(NodeId::new(0), false);
        assert!(s
            .on_cluster_change(&ctx, &view, &q.default_stats())
            .unwrap()
            .is_empty());
        assert!(s.plan_for_batch(&q.default_stats()).is_some());
    }
}
