//! The composable stages of the simulation loop.
//!
//! [`crate::simulator::Simulator::run`] used to be one monolithic function;
//! it is now a pipeline of four small stages, each testable on its own:
//!
//! 1. [`ArrivalProcess`] — Poisson tuple arrivals for the driving stream.
//! 2. [`PlanRouter`] — asks the strategy for the batch's logical plan and
//!    derives the per-node work vectors, **cached** across ticks: the vectors
//!    are recomputed only when the routed plan, the placement epoch, or the
//!    ground-truth statistics actually change. For the paper's
//!    piecewise-constant workloads this turns the per-tick cost-model work
//!    into a handful of recomputations per regime switch.
//! 3. Work accounting ([`batch_latency_secs`], [`charge_batch`],
//!    [`charge_migrations`]) — latency measurement and node work charging.
//! 4. [`drain_nodes`] — every node processes up to one tick's capacity.

use crate::node::SimNode;
use crate::simulator::SimConfig;
use crate::strategy::DistributionStrategy;
use rld_common::rng::{derive_seed, rng_from_seed, sample_poisson, SeededRng};
use rld_common::{NodeId, Result, RldError, StatsSnapshot};
use rld_physical::{MigrationDecision, PhysicalPlan};
use rld_query::{CostModel, LogicalPlan};
use std::sync::Arc;

/// Stage 1: the Poisson arrival process of the driving stream. Seeded per
/// (simulation seed, strategy name) so every strategy sees its own — but
/// reproducible — arrival sequence.
pub struct ArrivalProcess {
    rng: SeededRng,
}

impl ArrivalProcess {
    /// Create the arrival process for one run.
    pub fn new(seed: u64, strategy_name: &str) -> Self {
        Self {
            rng: rng_from_seed(derive_seed(seed, strategy_name)),
        }
    }

    /// Number of driving tuples arriving in a tick of `dt_secs` at `rate`
    /// tuples/second (Poisson thinning of the true rate).
    pub fn sample_batch(&mut self, rate: f64, dt_secs: f64) -> u64 {
        sample_poisson(&mut self.rng, (rate * dt_secs).max(0.0))
    }
}

/// Everything the work-accounting stage needs to know about a routed batch,
/// normalized per driving tuple so one derivation serves every batch size.
#[derive(Debug, Clone, Default)]
pub struct RoutedBatch {
    /// Per-node query work for ONE driving tuple of the routed plan at the
    /// current ground-truth statistics.
    pub per_tuple_node_work: Vec<f64>,
    /// Distinct nodes the plan's pipeline touches, in plan order (the first
    /// entry hosts the plan's first operator).
    pub pipeline_nodes: Vec<NodeId>,
    /// Result tuples produced per driving tuple at the current truth.
    pub output_per_input: f64,
}

impl RoutedBatch {
    /// Total query work for ONE driving tuple across all nodes.
    pub fn per_tuple_total_work(&self) -> f64 {
        self.per_tuple_node_work.iter().sum()
    }
}

/// Stage 2: per-batch plan routing with a derivation cache.
///
/// The strategy is consulted every batch (so plan-switch counting keeps its
/// per-batch semantics), but the expensive derived state — cost-model work
/// vectors and the pipeline's node order — is recomputed only when the
/// routed logical plan, the placement, or the ground-truth statistics
/// change. The placement is compared structurally, so correctness does not
/// depend on strategies signalling their own migrations.
pub struct PlanRouter {
    cached_logical: Option<Arc<LogicalPlan>>,
    cached_physical: Option<PhysicalPlan>,
    cached_truth: Option<StatsSnapshot>,
    derived: RoutedBatch,
    recomputes: u64,
}

impl Default for PlanRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanRouter {
    /// Create an empty router (first call always derives).
    pub fn new() -> Self {
        Self {
            cached_logical: None,
            cached_physical: None,
            cached_truth: None,
            derived: RoutedBatch::default(),
            recomputes: 0,
        }
    }

    /// How many times the derived vectors had to be rebuilt. For a run of
    /// `B` batches over piecewise-constant statistics this stays far below
    /// `B` — the hot-path win the cache exists for.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    /// The most recently derived routed batch (default before any routing).
    pub fn current(&self) -> &RoutedBatch {
        &self.derived
    }

    /// The logical plan of the most recent [`Self::route`] call, if any.
    pub fn current_plan(&self) -> Option<&Arc<LogicalPlan>> {
        self.cached_logical.as_ref()
    }

    /// Route one batch: ask the strategy for the logical plan and return the
    /// (possibly cached) derived work vectors.
    pub fn route(
        &mut self,
        strategy: &mut dyn DistributionStrategy,
        cost_model: &CostModel,
        monitored: &StatsSnapshot,
        truth: &StatsSnapshot,
        num_nodes: usize,
    ) -> Result<&RoutedBatch> {
        let logical = strategy.plan_for_batch(monitored).ok_or_else(|| {
            RldError::Runtime("strategy has no logical plan for the batch".into())
        })?;
        // Pointer equality settles the common case (the classifier hands out
        // the same Arc for the same route) without comparing plan contents.
        let same_logical = match &self.cached_logical {
            Some(cached) => Arc::ptr_eq(cached, &logical) || **cached == *logical,
            None => false,
        };
        let hit = same_logical
            && self.cached_physical.as_ref() == Some(strategy.physical())
            && self.cached_truth.as_ref() == Some(truth);
        if !hit {
            self.derived =
                derive_routed_batch(&logical, strategy.physical(), cost_model, truth, num_nodes)?;
            self.cached_logical = Some(logical);
            self.cached_physical = Some(strategy.physical().clone());
            self.cached_truth = Some(truth.clone());
            self.recomputes += 1;
        }
        Ok(&self.derived)
    }
}

/// Derive the per-node work vectors and pipeline order for one (plan,
/// placement, truth) combination. An operator the placement does not cover,
/// or one placed on a node the cluster does not have, is a runtime error —
/// never silently charged elsewhere.
fn derive_routed_batch(
    logical: &LogicalPlan,
    physical: &PhysicalPlan,
    cost_model: &CostModel,
    truth: &StatsSnapshot,
    num_nodes: usize,
) -> Result<RoutedBatch> {
    let work_by_op = cost_model.per_driving_tuple_work_by_operator(logical, truth)?;
    let mut per_tuple_node_work = vec![0.0f64; num_nodes];
    let mut pipeline_nodes = Vec::new();
    let mut visited = vec![false; num_nodes];
    for op in logical.ordering() {
        let node = physical.node_of(*op).ok_or_else(|| {
            RldError::Runtime(format!("physical plan does not place {op} on any node"))
        })?;
        if node.index() >= num_nodes {
            return Err(RldError::Runtime(format!(
                "physical plan places {op} on unknown node {node}"
            )));
        }
        per_tuple_node_work[node.index()] += work_by_op[op.index()];
        if !visited[node.index()] {
            visited[node.index()] = true;
            pipeline_nodes.push(node);
        }
    }
    Ok(RoutedBatch {
        per_tuple_node_work,
        pipeline_nodes,
        output_per_input: cost_model.output_per_input(truth),
    })
}

/// Stage 3a: the per-tuple processing time a batch of `n_tuples` experiences
/// right now — queueing delay plus service time on every node the pipeline
/// touches, in plan order, measured before the batch's own work is enqueued.
/// A pipeline touching a down node has infinite latency; the simulator must
/// treat that as a re-route trigger (see [`pipeline_down_node`]) instead of
/// recording it.
pub fn batch_latency_secs(nodes: &[SimNode], routed: &RoutedBatch, n_tuples: u64) -> f64 {
    routed
        .pipeline_nodes
        .iter()
        .map(|node| {
            let n = &nodes[node.index()];
            n.queueing_delay_secs()
                + n.service_time_secs(routed.per_tuple_node_work[node.index()] * n_tuples as f64)
        })
        .sum()
}

/// The first down node a routed batch's pipeline would flow through, if any
/// — the fault plane's loud re-route trigger: such a batch can never
/// complete, so the simulator drops it, counts its tuples as lost, and the
/// strategy's cluster-change hook is what reroutes future batches.
pub fn pipeline_down_node(nodes: &[SimNode], routed: &RoutedBatch) -> Option<NodeId> {
    routed
        .pipeline_nodes
        .iter()
        .copied()
        .find(|node| !nodes[node.index()].is_up())
}

/// Stage 3b: charge a batch's classification overhead (to the node hosting
/// the plan's first operator) and its per-node query work. `tracked_tuples`
/// of the batch's driving tuples are attributed to the nodes in proportion
/// to the work each does, so a `Lost`-semantic crash can account for the
/// tuples queued on the dead node; the simulator only tracks the tuples it
/// counted as processed, keeping a later crash retraction exact.
pub fn charge_batch(
    nodes: &mut [SimNode],
    routed: &RoutedBatch,
    n_tuples: u64,
    overhead_fraction: f64,
    tracked_tuples: u64,
) {
    let scale = n_tuples as f64;
    if overhead_fraction > 0.0 {
        if let Some(first) = routed.pipeline_nodes.first() {
            nodes[first.index()]
                .enqueue_overhead(routed.per_tuple_total_work() * scale * overhead_fraction);
        }
    }
    let total_work = routed.per_tuple_total_work();
    for (node, work) in nodes.iter_mut().zip(&routed.per_tuple_node_work) {
        let tuples = if total_work > 0.0 {
            tracked_tuples as f64 * (*work / total_work)
        } else {
            0.0
        };
        node.enqueue_work_with_tuples(*work * scale, tuples);
    }
}

/// Stage 3c: charge migration decisions as overhead work, split evenly
/// between the source (suspend + serialize) and target (deserialize +
/// resume) nodes. When the source node is down (a failover migration off a
/// crashed machine) its half is charged to the target instead — the state
/// is rebuilt from checkpoints/replay *on the target*, and work queued on a
/// dead node would otherwise freeze until recovery. A decision naming a
/// node the cluster does not have is a runtime error — the strategy trait
/// is an open seam, so decisions are not trusted blindly.
pub fn charge_migrations(
    nodes: &mut [SimNode],
    decisions: &[MigrationDecision],
    config: &SimConfig,
) -> Result<()> {
    for d in decisions {
        if d.from.index() >= nodes.len() || d.to.index() >= nodes.len() {
            return Err(RldError::Runtime(format!(
                "migration of {} names a node outside the {}-node cluster ({} -> {})",
                d.operator,
                nodes.len(),
                d.from,
                d.to
            )));
        }
        let work = config.migration_fixed_cost
            + config.migration_cost_per_kb * (d.state_bytes as f64 / 1024.0);
        if nodes[d.from.index()].is_up() {
            nodes[d.from.index()].enqueue_overhead(work / 2.0);
            nodes[d.to.index()].enqueue_overhead(work / 2.0);
        } else {
            nodes[d.to.index()].enqueue_overhead(work);
        }
    }
    Ok(())
}

/// Outcome of draining every node for one tick.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DrainOutcome {
    /// Total work processed this tick across all nodes.
    pub work_done: f64,
    /// The largest backlog left on any node after the tick.
    pub max_backlog: f64,
}

/// Stage 4: every node processes up to one tick's worth of capacity.
pub fn drain_nodes(nodes: &mut [SimNode], dt_secs: f64) -> DrainOutcome {
    let mut out = DrainOutcome::default();
    for node in nodes.iter_mut() {
        out.work_done += node.tick(dt_secs);
        out.max_backlog = out.max_backlog.max(node.backlog);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::RodStrategy;
    use rld_common::Query;
    use rld_physical::{Cluster, RodPlanner};

    fn rod_fixture() -> (Query, CostModel, RodStrategy) {
        let q = Query::q1_stock_monitoring();
        let cluster = Cluster::homogeneous(3, 1e9).unwrap();
        let plan = RodPlanner::new()
            .plan(&q, &q.default_stats(), &cluster, 1.0)
            .unwrap();
        let cm = CostModel::new(q.clone());
        (q, cm, RodStrategy::new(plan.logical, plan.physical))
    }

    #[test]
    fn arrival_process_is_deterministic_per_seed_and_name() {
        let mut a = ArrivalProcess::new(42, "RLD");
        let mut b = ArrivalProcess::new(42, "RLD");
        let mut c = ArrivalProcess::new(42, "ROD");
        let sa: Vec<u64> = (0..50).map(|_| a.sample_batch(30.0, 1.0)).collect();
        let sb: Vec<u64> = (0..50).map(|_| b.sample_batch(30.0, 1.0)).collect();
        let sc: Vec<u64> = (0..50).map(|_| c.sample_batch(30.0, 1.0)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc, "different strategies get independent streams");
    }

    #[test]
    fn router_caches_until_truth_or_plan_changes() {
        let (q, cm, mut rod) = rod_fixture();
        let mut router = PlanRouter::new();
        let truth = q.default_stats();
        let monitored = q.default_stats();
        for _ in 0..10 {
            router.route(&mut rod, &cm, &monitored, &truth, 3).unwrap();
        }
        assert_eq!(router.recomputes(), 1, "constant truth must derive once");

        let mut shifted = truth.clone();
        shifted.set(
            rld_common::StatKey::Selectivity(rld_common::OperatorId::new(0)),
            0.9,
        );
        router
            .route(&mut rod, &cm, &monitored, &shifted, 3)
            .unwrap();
        assert_eq!(router.recomputes(), 2, "new truth must re-derive");
        router
            .route(&mut rod, &cm, &monitored, &shifted, 3)
            .unwrap();
        assert_eq!(router.recomputes(), 2);
    }

    #[test]
    fn derived_vectors_match_the_unbatched_computation() {
        let (q, cm, mut rod) = rod_fixture();
        let mut router = PlanRouter::new();
        let truth = q.default_stats();
        let routed = router
            .route(&mut rod, &cm, &truth, &truth, 3)
            .unwrap()
            .clone();
        // Re-derive by hand against the strategy's plan.
        let logical = rod.plan_for_batch(&truth).unwrap();
        let work_by_op = cm
            .per_driving_tuple_work_by_operator(&logical, &truth)
            .unwrap();
        let physical = rod.physical().clone();
        let mut expected = vec![0.0f64; 3];
        for op in logical.ordering() {
            expected[physical.node_of(*op).unwrap().index()] += work_by_op[op.index()];
        }
        for (a, b) in routed.per_tuple_node_work.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(
            routed.pipeline_nodes.first().copied(),
            physical.node_of(logical.ordering()[0])
        );
        assert!((routed.output_per_input - cm.output_per_input(&truth)).abs() < 1e-12);
    }

    #[test]
    fn latency_and_charging_are_consistent() {
        let routed = RoutedBatch {
            per_tuple_node_work: vec![2.0, 0.0, 3.0],
            pipeline_nodes: vec![NodeId::new(0), NodeId::new(2)],
            output_per_input: 1.0,
        };
        let mut nodes: Vec<SimNode> = (0..3)
            .map(|i| SimNode::new(NodeId::new(i), 100.0))
            .collect();
        nodes[0].enqueue_work(50.0); // pre-existing backlog: 0.5 s queueing
        let latency = batch_latency_secs(&nodes, &routed, 10);
        // node0: 0.5 queueing + 20/100 service; node2: 0 + 30/100.
        assert!((latency - (0.5 + 0.2 + 0.3)).abs() < 1e-12);

        charge_batch(&mut nodes, &routed, 10, 0.02, 10);
        // The tracked tuples land on the working nodes in work proportion.
        assert!((nodes[0].inflight_tuples() - 4.0).abs() < 1e-9);
        assert!((nodes[2].inflight_tuples() - 6.0).abs() < 1e-9);
        // Overhead charged to node 0 (first pipeline node): 50 * 0.02 = 1.0.
        assert!((nodes[0].backlog - (50.0 + 20.0 + 1.0)).abs() < 1e-9);
        assert!((nodes[2].backlog - 30.0).abs() < 1e-9);

        let out = drain_nodes(&mut nodes, 1.0);
        assert!((out.work_done - (71.0f64.min(100.0) + 30.0)).abs() < 1e-9);
        assert!(out.max_backlog >= 0.0);
    }

    #[test]
    fn migration_charging_validates_node_indices() {
        let (q, _, _) = rod_fixture();
        let mut nodes: Vec<SimNode> = (0..2)
            .map(|i| SimNode::new(NodeId::new(i), 100.0))
            .collect();
        let config = SimConfig::default();
        let good = MigrationDecision {
            operator: rld_common::OperatorId::new(0),
            from: NodeId::new(0),
            to: NodeId::new(1),
            state_bytes: q
                .operator(rld_common::OperatorId::new(0))
                .unwrap()
                .state_bytes,
        };
        assert!(charge_migrations(&mut nodes, &[good], &config).is_ok());
        assert!(nodes[0].backlog > 0.0 && nodes[1].backlog > 0.0);

        let bad = MigrationDecision {
            to: NodeId::new(9),
            ..good
        };
        let err = charge_migrations(&mut nodes, &[bad], &config).unwrap_err();
        assert!(matches!(err, RldError::Runtime(_)), "{err:?}");
    }
}
