//! The fault plane: deterministic schedules of machine-level disturbances.
//!
//! The paper's robustness argument is about *statistical* uncertainty, but a
//! production DSPS also faces *machine-level* uncertainty: nodes crash, come
//! back, and slow down. A [`FaultPlan`] is a deterministic, seed-derivable
//! schedule of such node events that the simulator applies at tick
//! granularity, so every strategy is exercised against the exact same
//! disturbance sequence — and every run is bit-reproducible.
//!
//! Three event kinds cover the space the fault-tolerance literature cares
//! about:
//!
//! * **Crash / Recover** — the node disappears entirely; its in-flight
//!   backlog is either lost or replayed on recovery, per the plan's
//!   [`RecoverySemantic`] (the at-most-once vs at-least-once distinction).
//! * **Degrade / Restore** — the node keeps running at a fraction of its
//!   nominal capacity (a straggler). Ramps are just sequences of degrade
//!   events with decreasing factors.
//!
//! Schedules are built either explicitly ([`FaultPlan::new`],
//! [`FaultPlan::node_crash`], [`FaultPlan::straggler_ramp`]) or derived from
//! a seed ([`FaultPlan::flapping`] samples up/down intervals from a seeded
//! RNG), and validate against the cluster size before a run starts.

use rld_common::rng::{derive_seed, rng_from_seed, sample_exponential};
use rld_common::{NodeId, Result, RldError};
use serde::{Deserialize, Serialize};

/// What happens to a node at one point of the fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node goes down. Work routed through it is dropped (and counted)
    /// until it recovers; its queued backlog follows the plan's
    /// [`RecoverySemantic`].
    Crash,
    /// The node comes back up (at whatever degradation factor it last had).
    Recover,
    /// The node keeps running but only delivers `factor` × its nominal
    /// capacity (a straggler). `factor` must be in `(0, 1]`.
    Degrade {
        /// Fraction of nominal capacity the node still delivers.
        factor: f64,
    },
    /// The node returns to full nominal capacity.
    Restore,
}

/// One scheduled node event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulated time at which the event takes effect (start of the tick
    /// containing it).
    pub at_secs: f64,
    /// The node the event applies to.
    pub node: NodeId,
    /// What happens.
    pub kind: FaultKind,
}

/// What happens to a crashed node's queued (in-flight) work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoverySemantic {
    /// The backlog is discarded: the tuples it carried are counted as lost
    /// (at-most-once processing).
    #[default]
    Lost,
    /// The backlog survives the crash and is processed after recovery
    /// (at-least-once processing via upstream replay); those tuples are
    /// delayed, not lost.
    Replay,
}

/// A deterministic schedule of node fault events plus the recovery semantic
/// applied when nodes crash.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// What happens to in-flight work on a crashing node.
    pub recovery: RecoverySemantic,
}

impl FaultPlan {
    /// The empty plan: a frozen, fault-free cluster (the pre-fault-plane
    /// behaviour).
    pub fn none() -> Self {
        Self::default()
    }

    /// Build a plan from explicit events. Events are sorted by time (ties
    /// broken by node index, then by declaration order); times must be
    /// finite and non-negative, and degrade factors strictly inside
    /// `(0, 1)` — a factor of `1.0` is not a degradation and a factor of
    /// `0.0` (or more than one) would silently produce a nonsense effective
    /// capacity, so both are rejected here instead of surfacing as weird
    /// simulation results. Two events for the same node at the same instant
    /// are ambiguous (their application order would be declaration
    /// dependent) and are rejected as well.
    pub fn new(events: Vec<FaultEvent>, recovery: RecoverySemantic) -> Result<Self> {
        for e in &events {
            if !e.at_secs.is_finite() || e.at_secs < 0.0 {
                return Err(RldError::InvalidArgument(format!(
                    "fault event time must be finite and non-negative, got {}",
                    e.at_secs
                )));
            }
            if let FaultKind::Degrade { factor } = e.kind {
                if !(factor > 0.0 && factor < 1.0) {
                    return Err(RldError::InvalidArgument(format!(
                        "degrade factor must be in (0, 1), got {factor}"
                    )));
                }
            }
        }
        let mut events = events;
        events.sort_by(|a, b| {
            a.at_secs
                .partial_cmp(&b.at_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.node.index().cmp(&b.node.index()))
        });
        if let Some(pair) = events
            .windows(2)
            .find(|w| w[0].node == w[1].node && w[0].at_secs == w[1].at_secs)
        {
            return Err(RldError::InvalidArgument(format!(
                "duplicate fault events for node {} at t={}: {:?} and {:?}",
                pair[0].node, pair[0].at_secs, pair[0].kind, pair[1].kind
            )));
        }
        Ok(Self { events, recovery })
    }

    /// One node crashing at `crash_at` and recovering at `recover_at`.
    pub fn node_crash(
        node: NodeId,
        crash_at: f64,
        recover_at: f64,
        recovery: RecoverySemantic,
    ) -> Result<Self> {
        if recover_at <= crash_at {
            return Err(RldError::InvalidArgument(format!(
                "recovery at {recover_at} must come after the crash at {crash_at}"
            )));
        }
        Self::new(
            vec![
                FaultEvent {
                    at_secs: crash_at,
                    node,
                    kind: FaultKind::Crash,
                },
                FaultEvent {
                    at_secs: recover_at,
                    node,
                    kind: FaultKind::Recover,
                },
            ],
            recovery,
        )
    }

    /// A straggler ramp: starting at `start_secs`, the node's capacity steps
    /// down to `floor_factor` over `ramp_secs` in `steps` equal steps, holds
    /// there for `hold_secs`, then is restored to full capacity.
    pub fn straggler_ramp(
        node: NodeId,
        start_secs: f64,
        ramp_secs: f64,
        hold_secs: f64,
        floor_factor: f64,
        steps: usize,
    ) -> Result<Self> {
        if !(floor_factor > 0.0 && floor_factor < 1.0) {
            return Err(RldError::InvalidArgument(format!(
                "straggler floor factor must be in (0, 1), got {floor_factor}"
            )));
        }
        if steps == 0 || ramp_secs <= 0.0 {
            return Err(RldError::InvalidArgument(
                "straggler ramp needs at least one step over a positive duration".into(),
            ));
        }
        if hold_secs <= 0.0 {
            // A zero hold would schedule the restore at the exact instant of
            // the final degrade step — an ambiguous duplicate event.
            return Err(RldError::InvalidArgument(
                "straggler ramp needs a positive hold before restoring".into(),
            ));
        }
        let mut events = Vec::with_capacity(steps + 1);
        for s in 0..steps {
            // Step s+1 of `steps` fires at its share of the ramp window, so
            // the floor factor is reached exactly at `start + ramp_secs`.
            let progress = (s + 1) as f64 / steps as f64;
            events.push(FaultEvent {
                at_secs: start_secs + ramp_secs * progress,
                node,
                kind: FaultKind::Degrade {
                    factor: 1.0 + (floor_factor - 1.0) * progress,
                },
            });
        }
        events.push(FaultEvent {
            at_secs: start_secs + ramp_secs + hold_secs,
            node,
            kind: FaultKind::Restore,
        });
        Self::new(events, RecoverySemantic::Lost)
    }

    /// A seed-derived flapping node: alternating up/down intervals sampled
    /// from exponential distributions with the given means, from
    /// `start_secs` until `end_secs`. The same seed always yields the same
    /// schedule; down intervals are at least one second so every crash is
    /// observable at tick granularity (no crash starts within the last
    /// second of the window, and a final recovery may fall beyond it —
    /// leaving the node down through the end of a run that stops there).
    pub fn flapping(
        seed: u64,
        node: NodeId,
        start_secs: f64,
        end_secs: f64,
        mean_up_secs: f64,
        mean_down_secs: f64,
        recovery: RecoverySemantic,
    ) -> Result<Self> {
        if end_secs <= start_secs || mean_up_secs <= 0.0 || mean_down_secs <= 0.0 {
            return Err(RldError::InvalidArgument(
                "flapping needs a positive window and positive mean intervals".into(),
            ));
        }
        let mut rng = rng_from_seed(derive_seed(seed, "fault-flap"));
        let mut events = Vec::new();
        let mut t = start_secs + sample_exponential(&mut rng, mean_up_secs);
        while t + 1.0 <= end_secs {
            events.push(FaultEvent {
                at_secs: t,
                node,
                kind: FaultKind::Crash,
            });
            let down = sample_exponential(&mut rng, mean_down_secs).max(1.0);
            t += down;
            events.push(FaultEvent {
                at_secs: t,
                node,
                kind: FaultKind::Recover,
            });
            t += sample_exponential(&mut rng, mean_up_secs);
        }
        Self::new(events, recovery)
    }

    /// The schedule, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of crash events in the schedule.
    pub fn num_crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::Crash)
            .count()
    }

    /// Validate that every event names a node inside an `n`-node cluster.
    pub fn validate_for(&self, num_nodes: usize) -> Result<()> {
        for e in &self.events {
            if e.node.index() >= num_nodes {
                return Err(RldError::InvalidArgument(format!(
                    "fault event at t={} names node {} outside the {}-node cluster",
                    e.at_secs, e.node, num_nodes
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sorted_and_validated() {
        let plan = FaultPlan::new(
            vec![
                FaultEvent {
                    at_secs: 100.0,
                    node: NodeId::new(0),
                    kind: FaultKind::Recover,
                },
                FaultEvent {
                    at_secs: 50.0,
                    node: NodeId::new(0),
                    kind: FaultKind::Crash,
                },
            ],
            RecoverySemantic::Lost,
        )
        .unwrap();
        assert_eq!(plan.events()[0].at_secs, 50.0);
        assert_eq!(plan.num_crashes(), 1);
        assert!(plan.validate_for(1).is_ok());
        assert!(plan.validate_for(0).is_err());

        assert!(FaultPlan::new(
            vec![FaultEvent {
                at_secs: -1.0,
                node: NodeId::new(0),
                kind: FaultKind::Crash,
            }],
            RecoverySemantic::Lost,
        )
        .is_err());
        assert!(FaultPlan::new(
            vec![FaultEvent {
                at_secs: 0.0,
                node: NodeId::new(0),
                kind: FaultKind::Degrade { factor: 0.0 },
            }],
            RecoverySemantic::Lost,
        )
        .is_err());
    }

    #[test]
    fn degrade_factor_must_be_a_real_degradation() {
        let degrade = |factor| {
            FaultPlan::new(
                vec![FaultEvent {
                    at_secs: 0.0,
                    node: NodeId::new(0),
                    kind: FaultKind::Degrade { factor },
                }],
                RecoverySemantic::Lost,
            )
        };
        // 1.0 is "no degradation" and anything above would *add* capacity;
        // both silently produced nonsense effective capacities before.
        assert!(degrade(1.0).is_err());
        assert!(degrade(1.5).is_err());
        assert!(degrade(0.0).is_err());
        assert!(degrade(-0.5).is_err());
        assert!(degrade(f64::NAN).is_err());
        assert!(degrade(0.5).is_ok());
        assert!(degrade(0.999).is_ok());
    }

    #[test]
    fn duplicate_same_instant_events_for_one_node_are_rejected() {
        let event = |at_secs, node, kind| FaultEvent {
            at_secs,
            node: NodeId::new(node),
            kind,
        };
        // Same node, same instant: ambiguous application order.
        assert!(FaultPlan::new(
            vec![
                event(10.0, 0, FaultKind::Crash),
                event(10.0, 0, FaultKind::Recover),
            ],
            RecoverySemantic::Lost,
        )
        .is_err());
        // Same instant on different nodes is fine.
        assert!(FaultPlan::new(
            vec![
                event(10.0, 0, FaultKind::Crash),
                event(10.0, 1, FaultKind::Crash),
            ],
            RecoverySemantic::Lost,
        )
        .is_ok());
        // Same node at different instants is fine.
        assert!(FaultPlan::new(
            vec![
                event(10.0, 0, FaultKind::Crash),
                event(11.0, 0, FaultKind::Recover),
            ],
            RecoverySemantic::Lost,
        )
        .is_ok());
    }

    #[test]
    fn straggler_ramp_requires_a_positive_hold() {
        assert!(FaultPlan::straggler_ramp(NodeId::new(0), 10.0, 20.0, 0.0, 0.5, 2).is_err());
        assert!(FaultPlan::straggler_ramp(NodeId::new(0), 10.0, 20.0, -1.0, 0.5, 2).is_err());
        assert!(FaultPlan::straggler_ramp(NodeId::new(0), 10.0, 20.0, 5.0, 0.5, 2).is_ok());
    }

    #[test]
    fn node_crash_orders_crash_before_recovery() {
        let plan =
            FaultPlan::node_crash(NodeId::new(2), 60.0, 180.0, RecoverySemantic::Replay).unwrap();
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.events()[0].kind, FaultKind::Crash);
        assert_eq!(plan.events()[1].kind, FaultKind::Recover);
        assert_eq!(plan.recovery, RecoverySemantic::Replay);
        assert!(FaultPlan::node_crash(NodeId::new(2), 60.0, 60.0, RecoverySemantic::Lost).is_err());
    }

    #[test]
    fn straggler_ramp_descends_to_the_floor_then_restores() {
        let plan = FaultPlan::straggler_ramp(NodeId::new(1), 60.0, 120.0, 60.0, 0.25, 4).unwrap();
        let factors: Vec<f64> = plan
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Degrade { factor } => Some(factor),
                _ => None,
            })
            .collect();
        assert_eq!(factors.len(), 4);
        assert!(factors.windows(2).all(|w| w[1] < w[0]), "{factors:?}");
        assert!((factors.last().unwrap() - 0.25).abs() < 1e-12);
        let last = plan.events().last().unwrap();
        assert_eq!(last.kind, FaultKind::Restore);
        assert!((last.at_secs - 240.0).abs() < 1e-12);
        assert!(FaultPlan::straggler_ramp(NodeId::new(1), 0.0, 10.0, 0.0, 1.5, 2).is_err());
    }

    #[test]
    fn flapping_is_deterministic_per_seed_and_alternates() {
        let a = FaultPlan::flapping(
            7,
            NodeId::new(0),
            10.0,
            600.0,
            60.0,
            15.0,
            RecoverySemantic::Lost,
        )
        .unwrap();
        let b = FaultPlan::flapping(
            7,
            NodeId::new(0),
            10.0,
            600.0,
            60.0,
            15.0,
            RecoverySemantic::Lost,
        )
        .unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::flapping(
            8,
            NodeId::new(0),
            10.0,
            600.0,
            60.0,
            15.0,
            RecoverySemantic::Lost,
        )
        .unwrap();
        assert_ne!(a, c);
        assert!(a.num_crashes() >= 1);
        // Crash and recover events strictly alternate, every down interval
        // lasts at least a second, and no crash starts within the last
        // second of the window.
        for pair in a.events().chunks(2) {
            assert_eq!(pair[0].kind, FaultKind::Crash);
            assert!(pair[0].at_secs + 1.0 <= 600.0);
            if pair.len() == 2 {
                assert_eq!(pair[1].kind, FaultKind::Recover);
                assert!(pair[1].at_secs - pair[0].at_secs >= 1.0);
            }
        }
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.num_crashes(), 0);
        assert!(plan.validate_for(0).is_ok());
    }
}
