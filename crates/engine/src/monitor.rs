//! The statistics monitor (§3, "Statistic monitor").
//!
//! Each machine in the paper's DSPS runs a monitor that periodically samples
//! operator selectivities and stream input rates and ships them to the
//! executor. The simulator models the whole monitoring plane as one
//! component: it observes the ground-truth statistics only every
//! `period_secs`, and smooths them exponentially — so the executor always
//! works with slightly stale, slightly damped statistics, as a real monitor
//! would.

use rld_common::StatsSnapshot;
use serde::{Deserialize, Serialize};

/// Periodic, exponentially smoothed statistics sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatisticsMonitor {
    /// Sampling period in seconds.
    pub period_secs: f64,
    /// Exponential smoothing factor in `(0, 1]`; 1.0 means no smoothing.
    pub smoothing_alpha: f64,
    current: StatsSnapshot,
    last_sample_at: Option<f64>,
}

impl StatisticsMonitor {
    /// Create a monitor seeded with the optimizer's initial estimates.
    pub fn new(initial: StatsSnapshot, period_secs: f64, smoothing_alpha: f64) -> Self {
        assert!(period_secs > 0.0, "monitor period must be positive");
        assert!(
            smoothing_alpha > 0.0 && smoothing_alpha <= 1.0,
            "smoothing alpha must be in (0, 1]"
        );
        Self {
            period_secs,
            smoothing_alpha,
            current: initial,
            last_sample_at: None,
        }
    }

    /// The monitor's current view of the statistics.
    pub fn current(&self) -> &StatsSnapshot {
        &self.current
    }

    /// Offer the ground truth at time `t`; the monitor only updates its view
    /// when a full sampling period has elapsed since the previous sample.
    /// Returns `true` when the view was updated.
    pub fn observe(&mut self, t_secs: f64, truth: &StatsSnapshot) -> bool {
        let due = match self.last_sample_at {
            None => true,
            Some(last) => t_secs - last + 1e-9 >= self.period_secs,
        };
        if !due {
            return false;
        }
        self.current = self.current.smoothed_towards(truth, self.smoothing_alpha);
        self.last_sample_at = Some(t_secs);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{OperatorId, StatKey};

    fn snap(v: f64) -> StatsSnapshot {
        StatsSnapshot::from_entries([(StatKey::Selectivity(OperatorId::new(0)), v)])
    }

    #[test]
    fn first_observation_is_taken_immediately() {
        let mut m = StatisticsMonitor::new(snap(0.5), 10.0, 1.0);
        assert!(m.observe(0.0, &snap(0.9)));
        assert_eq!(m.current().selectivity(OperatorId::new(0)), Some(0.9));
    }

    #[test]
    fn sampling_period_is_respected() {
        let mut m = StatisticsMonitor::new(snap(0.5), 10.0, 1.0);
        assert!(m.observe(0.0, &snap(0.6)));
        assert!(!m.observe(5.0, &snap(0.9)));
        assert_eq!(m.current().selectivity(OperatorId::new(0)), Some(0.6));
        assert!(m.observe(10.0, &snap(0.9)));
        assert_eq!(m.current().selectivity(OperatorId::new(0)), Some(0.9));
    }

    #[test]
    fn smoothing_damps_jumps() {
        let mut m = StatisticsMonitor::new(snap(0.0), 1.0, 0.5);
        m.observe(0.0, &snap(1.0));
        assert_eq!(m.current().selectivity(OperatorId::new(0)), Some(0.5));
        m.observe(1.0, &snap(1.0));
        assert_eq!(m.current().selectivity(OperatorId::new(0)), Some(0.75));
    }

    #[test]
    #[should_panic(expected = "monitor period must be positive")]
    fn invalid_period_panics() {
        StatisticsMonitor::new(snap(0.0), 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "smoothing alpha must be in (0, 1]")]
    fn invalid_alpha_panics() {
        StatisticsMonitor::new(snap(0.0), 1.0, 0.0);
    }
}
