//! The online classifier (§3, "Robust load executor").
//!
//! RLD runs on top of a QueryMesh-style multi-route executor: each incoming
//! tuple batch is classified by the latest monitored statistics and routed
//! through the robust logical plan whose robust region contains (or is
//! closest to) that point of the parameter space. The classification itself
//! costs a small fraction of the query-processing work (~2% in the paper's
//! measurements), which the simulator charges as overhead.
//!
//! The per-batch hot path is allocation-free: region containment is answered
//! by the [`ClassifierIndex`] (per-dimension interval-stabbing bitsets,
//! `O(dims)` words per probe), candidate entries are collected into reused
//! scratch buffers, and [`OnlineClassifier::classify`] hands back a shared
//! [`Arc<LogicalPlan>`] instead of deep-cloning the plan for every batch.

use crate::index::ClassifierIndex;
use rld_common::StatsSnapshot;
use rld_logical::RobustLogicalSolution;
use rld_paramspace::ParameterSpace;
use rld_query::{CostModel, LogicalPlan};
use std::sync::Arc;

/// Per-batch logical plan selector used by the RLD runtime.
#[derive(Debug, Clone)]
pub struct OnlineClassifier {
    space: ParameterSpace,
    solution: RobustLogicalSolution,
    cost_model: Option<CostModel>,
    index: ClassifierIndex,
    switches: usize,
    last_entry: Option<usize>,
    // Reused scratch buffers — the reason `classify` never allocates after
    // the first few batches.
    scratch_point: Vec<usize>,
    scratch_regions: Vec<usize>,
    scratch_entries: Vec<usize>,
    entry_stamp: Vec<u64>,
    stamp: u64,
}

impl OnlineClassifier {
    /// Create a classifier over a robust logical solution. Without a cost
    /// model it routes purely by robust-region containment; with one (see
    /// [`OnlineClassifier::with_cost_model`]) it picks the cheapest covering
    /// plan, which is what the QueryMesh executor's classifier effectively
    /// does with its per-statistics plan index.
    pub fn new(space: ParameterSpace, solution: RobustLogicalSolution) -> Self {
        let index = ClassifierIndex::build(&space, &solution);
        let entries = index.num_entries();
        Self {
            space,
            solution,
            cost_model: None,
            index,
            switches: 0,
            last_entry: None,
            scratch_point: Vec::new(),
            scratch_regions: Vec::new(),
            scratch_entries: Vec::new(),
            entry_stamp: vec![0; entries],
            stamp: 0,
        }
    }

    /// Attach a cost model so classification picks, among the robust plans
    /// whose region contains the observed statistics (falling back to all
    /// plans when none covers them), the one with the lowest estimated cost.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = Some(cost_model);
        self
    }

    /// The robust logical solution being routed over.
    pub fn solution(&self) -> &RobustLogicalSolution {
        &self.solution
    }

    /// The region-containment index backing classification.
    pub fn index(&self) -> &ClassifierIndex {
        &self.index
    }

    /// Number of times the selected plan changed between consecutive batches.
    pub fn plan_switches(&self) -> usize {
        self.switches
    }

    /// Whether the monitored statistics are still inside the modelled
    /// parameter space; when they are not, RLD's guarantees no longer hold
    /// (the paper notes migration would be needed for truly unexpected
    /// fluctuations).
    pub fn stats_in_space(&self, stats: &StatsSnapshot) -> bool {
        self.space.covers_snapshot(stats)
    }

    /// Whether the monitored statistics fall inside some plan's ε-robust
    /// region: they must lie within the modelled parameter space *and* their
    /// grid cell must be claimed by at least one plan of the solution. When
    /// this is false the classifier still routes (cheapest plan overall) but
    /// the robustness guarantee no longer applies — the signal the hybrid
    /// strategy uses to fall back to migration.
    pub fn robustly_covered(&mut self, stats: &StatsSnapshot) -> bool {
        if !self.stats_in_space(stats) {
            return false;
        }
        self.space
            .project_snapshot_into(stats, &mut self.scratch_point);
        self.index.covers(&self.scratch_point)
    }

    /// Select the logical plan for a batch given the monitored statistics.
    /// Returns a shared handle into the solution — no plan is cloned.
    /// Returns `None` only if the solution is empty.
    pub fn classify(&mut self, stats: &StatsSnapshot) -> Option<Arc<LogicalPlan>> {
        if self.index.num_entries() == 0 {
            return None;
        }
        self.space
            .project_snapshot_into(stats, &mut self.scratch_point);
        self.index
            .covering_regions(&self.scratch_point, &mut self.scratch_regions);
        // Dedupe covering regions into covering entries, preserving
        // solution-entry order (regions are flattened in entry order).
        self.stamp += 1;
        self.scratch_entries.clear();
        for &r in &self.scratch_regions {
            let e = self.index.entry_of_region(r);
            if self.entry_stamp[e] != self.stamp {
                self.entry_stamp[e] = self.stamp;
                self.scratch_entries.push(e);
            }
        }

        let entry = match &self.cost_model {
            Some(cm) => {
                // Candidates: covering entries; if none covers (statistics
                // drifted outside every region), every entry. Ties keep the
                // earliest candidate, matching `Iterator::min_by`.
                let mut best: Option<(usize, f64)> = None;
                let mut consider = |e: usize, cm: &CostModel| {
                    let cost = cm
                        .plan_cost(self.index.plan(e).as_ref(), stats)
                        .unwrap_or(f64::INFINITY);
                    if best.map(|(_, c)| cost < c).unwrap_or(true) {
                        best = Some((e, cost));
                    }
                };
                if self.scratch_entries.is_empty() {
                    for e in 0..self.index.num_entries() {
                        consider(e, cm);
                    }
                } else {
                    for &e in &self.scratch_entries {
                        consider(e, cm);
                    }
                }
                best.map(|(e, _)| e)?
            }
            None => {
                if self.scratch_entries.is_empty() {
                    self.nearest_entry()?
                } else {
                    // Largest robust region wins; ties keep the *latest*
                    // candidate, matching `Iterator::max_by_key`.
                    let mut best = self.scratch_entries[0];
                    for &e in &self.scratch_entries[1..] {
                        if self.index.entry_volume(e) >= self.index.entry_volume(best) {
                            best = e;
                        }
                    }
                    best
                }
            }
        };

        if self.last_entry != Some(entry) {
            if self.last_entry.is_some() {
                self.switches += 1;
            }
            self.last_entry = Some(entry);
        }
        Some(Arc::clone(self.index.plan(entry)))
    }

    /// Fallback when no robust region covers the point: the entry whose
    /// robust region is closest (Manhattan clamp distance between region
    /// bounds and the point); ties keep the earliest entry, matching
    /// `Iterator::min_by_key` over the solution.
    fn nearest_entry(&self) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for e in 0..self.index.num_entries() {
            let (start, end) = self.index.regions_of_entry(e);
            let dist = self.index.regions()[start..end]
                .iter()
                .map(|r| region_distance(r, &self.scratch_point))
                .min()
                .unwrap_or(usize::MAX);
            if best.map(|(_, d)| dist < d).unwrap_or(true) {
                best = Some((e, dist));
            }
        }
        best.map(|(e, _)| e)
    }
}

fn region_distance(region: &rld_paramspace::Region, point: &[usize]) -> usize {
    point
        .iter()
        .zip(region.lo.iter().zip(&region.hi))
        .map(|(x, (lo, hi))| {
            if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{OperatorId, Query, StatKey, UncertaintyLevel};
    use rld_logical::{EarlyTerminatedRobustPartitioning, ErpConfig, LogicalPlanGenerator};
    use rld_paramspace::GridPoint;
    use rld_query::JoinOrderOptimizer;

    fn fixture() -> (Query, ParameterSpace, RobustLogicalSolution) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), 9).unwrap();
        let opt = JoinOrderOptimizer::new(q.clone());
        let erp =
            EarlyTerminatedRobustPartitioning::new(&opt, &space, ErpConfig::with_epsilon(0.2));
        let (solution, _) = erp.generate().unwrap();
        (q, space, solution)
    }

    #[test]
    fn classify_returns_a_plan_from_the_solution() {
        let (q, space, solution) = fixture();
        let mut c = OnlineClassifier::new(space, solution.clone());
        let plan = c.classify(&q.default_stats()).unwrap();
        assert!(solution.plans().any(|p| *p == *plan));
        assert!(c.stats_in_space(&q.default_stats()));
    }

    #[test]
    fn classify_matches_the_solution_lookup_everywhere() {
        // Index-backed routing must agree with the reference implementation
        // (RobustLogicalSolution::plan_for) at every grid cell.
        let (q, space, solution) = fixture();
        let mut c = OnlineClassifier::new(space.clone(), solution.clone());
        for cell in space.iter_grid() {
            let stats = space.snapshot_at(&cell);
            let routed = c.classify(&stats).unwrap();
            let expected = solution
                .plan_for(&space.project_snapshot(&stats))
                .unwrap()
                .clone();
            assert_eq!(*routed, expected, "divergence at {cell}");
        }
        let _ = q;
    }

    #[test]
    fn plan_switches_are_counted() {
        let (q, space, solution) = fixture();
        if solution.len() < 2 {
            // Nothing to switch between; the classifier must still be stable.
            let mut c = OnlineClassifier::new(space, solution);
            c.classify(&q.default_stats());
            c.classify(&q.default_stats());
            assert_eq!(c.plan_switches(), 0);
            return;
        }
        let mut c = OnlineClassifier::new(space.clone(), solution);
        // Very low selectivities vs very high selectivities should route to
        // different plans if the solution has more than one.
        let mut low = q.default_stats();
        let mut high = q.default_stats();
        for op in q.operator_ids().iter().take(2) {
            low.set(StatKey::Selectivity(*op), 0.05);
            high.set(StatKey::Selectivity(*op), 0.95);
        }
        let p_low = c.classify(&low).unwrap();
        let _ = c.classify(&high).unwrap();
        let p_low_again = c.classify(&low).unwrap();
        assert_eq!(p_low, p_low_again);
        // Same stats always give the same plan; switch counting is monotone.
        let switches = c.plan_switches();
        c.classify(&low);
        assert_eq!(c.plan_switches(), switches);
    }

    #[test]
    fn out_of_space_stats_detected() {
        let (q, space, solution) = fixture();
        let mut c = OnlineClassifier::new(space, solution);
        let mut wild = q.default_stats();
        wild.set(StatKey::Selectivity(OperatorId::new(0)), 5.0);
        assert!(!c.stats_in_space(&wild));
        assert!(!c.robustly_covered(&wild));
    }

    #[test]
    fn empty_solution_returns_none() {
        let (q, space, _) = fixture();
        let mut c = OnlineClassifier::new(space, RobustLogicalSolution::new());
        assert!(c.classify(&q.default_stats()).is_none());
    }

    #[test]
    fn classified_plans_are_shared_not_cloned() {
        let (q, space, solution) = fixture();
        let mut c = OnlineClassifier::new(space, solution);
        let a = c.classify(&q.default_stats()).unwrap();
        let b = c.classify(&q.default_stats()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same route must reuse the same Arc");
    }

    #[test]
    fn robustly_covered_matches_entry_scan() {
        let (q, space, solution) = fixture();
        let mut c = OnlineClassifier::new(space.clone(), solution.clone());
        for cell in space.iter_grid() {
            let stats = space.snapshot_at(&cell);
            let by_scan = space.covers_snapshot(&stats)
                && solution
                    .entries()
                    .iter()
                    .any(|e| e.covers(&GridPoint::new(space.project_snapshot(&stats).indices)));
            assert_eq!(c.robustly_covered(&stats), by_scan);
        }
        let _ = q;
    }
}
