//! The online classifier (§3, "Robust load executor").
//!
//! RLD runs on top of a QueryMesh-style multi-route executor: each incoming
//! tuple batch is classified by the latest monitored statistics and routed
//! through the robust logical plan whose robust region contains (or is
//! closest to) that point of the parameter space. The classification itself
//! costs a small fraction of the query-processing work (~2% in the paper's
//! measurements), which the simulator charges as overhead.

use rld_common::StatsSnapshot;
use rld_logical::RobustLogicalSolution;
use rld_paramspace::ParameterSpace;
use rld_query::{CostModel, LogicalPlan};

/// Per-batch logical plan selector used by the RLD runtime.
#[derive(Debug, Clone)]
pub struct OnlineClassifier {
    space: ParameterSpace,
    solution: RobustLogicalSolution,
    cost_model: Option<CostModel>,
    switches: usize,
    last_plan: Option<LogicalPlan>,
}

impl OnlineClassifier {
    /// Create a classifier over a robust logical solution. Without a cost
    /// model it routes purely by robust-region containment; with one (see
    /// [`OnlineClassifier::with_cost_model`]) it picks the cheapest covering
    /// plan, which is what the QueryMesh executor's classifier effectively
    /// does with its per-statistics plan index.
    pub fn new(space: ParameterSpace, solution: RobustLogicalSolution) -> Self {
        Self {
            space,
            solution,
            cost_model: None,
            switches: 0,
            last_plan: None,
        }
    }

    /// Attach a cost model so classification picks, among the robust plans
    /// whose region contains the observed statistics (falling back to all
    /// plans when none covers them), the one with the lowest estimated cost.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = Some(cost_model);
        self
    }

    /// The robust logical solution being routed over.
    pub fn solution(&self) -> &RobustLogicalSolution {
        &self.solution
    }

    /// Number of times the selected plan changed between consecutive batches.
    pub fn plan_switches(&self) -> usize {
        self.switches
    }

    /// Whether the monitored statistics are still inside the modelled
    /// parameter space; when they are not, RLD's guarantees no longer hold
    /// (the paper notes migration would be needed for truly unexpected
    /// fluctuations).
    pub fn stats_in_space(&self, stats: &StatsSnapshot) -> bool {
        self.space.covers_snapshot(stats)
    }

    /// Whether the monitored statistics fall inside some plan's ε-robust
    /// region: they must lie within the modelled parameter space *and* their
    /// grid cell must be claimed by at least one plan of the solution. When
    /// this is false the classifier still routes (cheapest plan overall) but
    /// the robustness guarantee no longer applies — the signal the hybrid
    /// strategy uses to fall back to migration.
    pub fn robustly_covered(&self, stats: &StatsSnapshot) -> bool {
        if !self.stats_in_space(stats) {
            return false;
        }
        let point = self.space.project_snapshot(stats);
        self.solution.entries().iter().any(|e| e.covers(&point))
    }

    /// Select the logical plan for a batch given the monitored statistics.
    /// Returns `None` only if the solution is empty.
    pub fn classify(&mut self, stats: &StatsSnapshot) -> Option<LogicalPlan> {
        let point = self.space.project_snapshot(stats);
        let plan = match &self.cost_model {
            Some(cm) => {
                // Candidates: plans whose robust region covers the point; if
                // none does (statistics drifted outside every region), fall
                // back to every plan in the solution.
                let covering: Vec<&LogicalPlan> = self
                    .solution
                    .entries()
                    .iter()
                    .filter(|e| e.covers(&point))
                    .map(|e| &e.plan)
                    .collect();
                let candidates: Vec<&LogicalPlan> = if covering.is_empty() {
                    self.solution.plans().collect()
                } else {
                    covering
                };
                candidates
                    .into_iter()
                    .min_by(|a, b| {
                        let ca = cm.plan_cost(a, stats).unwrap_or(f64::INFINITY);
                        let cb = cm.plan_cost(b, stats).unwrap_or(f64::INFINITY);
                        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
                    })?
                    .clone()
            }
            None => self.solution.plan_for(&point)?.clone(),
        };
        if self.last_plan.as_ref() != Some(&plan) {
            if self.last_plan.is_some() {
                self.switches += 1;
            }
            self.last_plan = Some(plan.clone());
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{OperatorId, Query, StatKey, UncertaintyLevel};
    use rld_logical::{EarlyTerminatedRobustPartitioning, ErpConfig, LogicalPlanGenerator};
    use rld_query::JoinOrderOptimizer;

    fn fixture() -> (Query, ParameterSpace, RobustLogicalSolution) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), 9).unwrap();
        let opt = JoinOrderOptimizer::new(q.clone());
        let erp =
            EarlyTerminatedRobustPartitioning::new(&opt, &space, ErpConfig::with_epsilon(0.2));
        let (solution, _) = erp.generate().unwrap();
        (q, space, solution)
    }

    #[test]
    fn classify_returns_a_plan_from_the_solution() {
        let (q, space, solution) = fixture();
        let mut c = OnlineClassifier::new(space, solution.clone());
        let plan = c.classify(&q.default_stats()).unwrap();
        assert!(solution.plans().any(|p| *p == plan));
        assert!(c.stats_in_space(&q.default_stats()));
    }

    #[test]
    fn plan_switches_are_counted() {
        let (q, space, solution) = fixture();
        if solution.len() < 2 {
            // Nothing to switch between; the classifier must still be stable.
            let mut c = OnlineClassifier::new(space, solution);
            c.classify(&q.default_stats());
            c.classify(&q.default_stats());
            assert_eq!(c.plan_switches(), 0);
            return;
        }
        let mut c = OnlineClassifier::new(space.clone(), solution);
        // Very low selectivities vs very high selectivities should route to
        // different plans if the solution has more than one.
        let mut low = q.default_stats();
        let mut high = q.default_stats();
        for op in q.operator_ids().iter().take(2) {
            low.set(StatKey::Selectivity(*op), 0.05);
            high.set(StatKey::Selectivity(*op), 0.95);
        }
        let p_low = c.classify(&low).unwrap();
        let _ = c.classify(&high).unwrap();
        let p_low_again = c.classify(&low).unwrap();
        assert_eq!(p_low, p_low_again);
        // Same stats always give the same plan; switch counting is monotone.
        let switches = c.plan_switches();
        c.classify(&low);
        assert_eq!(c.plan_switches(), switches);
    }

    #[test]
    fn out_of_space_stats_detected() {
        let (q, space, solution) = fixture();
        let c = OnlineClassifier::new(space, solution);
        let mut wild = q.default_stats();
        wild.set(StatKey::Selectivity(OperatorId::new(0)), 5.0);
        assert!(!c.stats_in_space(&wild));
    }

    #[test]
    fn empty_solution_returns_none() {
        let (q, space, _) = fixture();
        let mut c = OnlineClassifier::new(space, RobustLogicalSolution::new());
        assert!(c.classify(&q.default_stats()).is_none());
    }
}
