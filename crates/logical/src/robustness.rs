//! ε-robustness checking (Definition 1) with memoized optimizer calls.
//!
//! Definition 1: a logical plan `lp` is ε-robust in a sub-space `S_i` when
//!
//! ```text
//! cost(lp, pntHi) ≤ (1 + ε) · cost(lp_opt@pntHi, pntHi)
//! ```
//!
//! Because the cost model is monotone along every dimension (§2.3), a plan
//! that is within `(1+ε)` of the optimum at *both* corners of a sub-space has
//! its cost at every interior point bounded between its own cost at `pntLo`
//! and `(1+ε)` times the optimal cost at `pntHi` — the provable bound the
//! paper describes after Definition 1. The checker therefore verifies both
//! corners.
//!
//! The checker memoizes optimizer results and plan costs per grid point so
//! that corners shared between neighbouring sub-spaces are optimized only
//! once; the number of *distinct* optimizer invocations is what the
//! partitioning algorithms report (the quantity the paper minimizes). The
//! memo table is sharded behind locks so the partitioning algorithms can
//! probe regions from a worker pool (`&RobustnessChecker` is `Sync` whenever
//! the underlying optimizer is).
//!
//! Region-level verification no longer loops over cells:
//! [`RobustnessChecker::is_robust_in_region`] uses the two-corner monotonicity
//! bound, and the exact [`RobustnessChecker::is_robust_everywhere`] combines
//! monotone corner bounds with recursive bisection, descending to individual
//! cells only where the bounds are inconclusive.

use crate::solution::RobustLogicalSolution;
use rld_common::{Result, StatsSnapshot};
use rld_paramspace::{GridPoint, ParameterSpace, Region};
use rld_query::{LogicalPlan, Optimizer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Number of lock shards in the optimum memo table. A small power of two is
/// plenty: contention only occurs when two workers hit the same shard at the
/// same instant, and the critical sections are a hash-map probe.
const CACHE_SHARDS: usize = 16;

/// One memo slot: its own lock doubles as the in-flight guard for the point.
type OptimumSlot = Arc<Mutex<Option<CachedOptimum>>>;

/// Robustness checker bound to an optimizer, a parameter space and a
/// robustness threshold ε.
pub struct RobustnessChecker<'a, O: Optimizer> {
    optimizer: &'a O,
    space: &'a ParameterSpace,
    epsilon: f64,
    /// Sharded memo: each point owns a slot whose own lock doubles as an
    /// in-flight guard, so two workers racing on the same point never both
    /// call the optimizer (shard locks are only held for the map probe).
    cache: Vec<Mutex<HashMap<GridPoint, OptimumSlot>>>,
}

#[derive(Clone)]
struct CachedOptimum {
    plan: LogicalPlan,
    cost: f64,
}

impl<'a, O: Optimizer> RobustnessChecker<'a, O> {
    /// Create a checker. `epsilon` is the robustness threshold of Definition 1
    /// (the paper sweeps 0.1–0.3).
    pub fn new(optimizer: &'a O, space: &'a ParameterSpace, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self {
            optimizer,
            space,
            epsilon,
            cache: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// The robustness threshold ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The parameter space being searched.
    pub fn space(&self) -> &ParameterSpace {
        self.space
    }

    /// Number of optimizer calls made through this checker so far
    /// (cache hits are free).
    pub fn optimizer_calls(&self) -> usize {
        self.optimizer.call_count()
    }

    /// The statistics snapshot at a grid point.
    pub fn snapshot_at(&self, point: &GridPoint) -> StatsSnapshot {
        self.space.snapshot_at(point)
    }

    /// The optimal plan at a grid point, memoized.
    pub fn optimal_plan_at(&self, point: &GridPoint) -> Result<LogicalPlan> {
        Ok(self.cached_optimum(point)?.plan)
    }

    /// The optimal plan's cost at a grid point, memoized.
    pub fn optimal_cost_at(&self, point: &GridPoint) -> Result<f64> {
        Ok(self.cached_optimum(point)?.cost)
    }

    /// Cost of an arbitrary plan at a grid point.
    pub fn plan_cost_at(&self, plan: &LogicalPlan, point: &GridPoint) -> Result<f64> {
        let stats = self.space.snapshot_at(point);
        self.optimizer.plan_cost(plan, &stats)
    }

    /// Definition 1 at a single grid point: is `plan` within `(1+ε)` of the
    /// optimum at that point?
    pub fn is_robust_at(&self, plan: &LogicalPlan, point: &GridPoint) -> Result<bool> {
        let optimal = self.optimal_cost_at(point)?;
        let cost = self.plan_cost_at(plan, point)?;
        Ok(cost <= (1.0 + self.epsilon) * optimal + 1e-12)
    }

    /// Region-level robustness used by the partitioning algorithms: `plan` is
    /// accepted for `region` when it satisfies Definition 1 at both corners
    /// (`pntLo` and `pntHi`), which by cost monotonicity bounds its cost over
    /// the whole sub-space.
    pub fn is_robust_in_region(&self, plan: &LogicalPlan, region: &Region) -> Result<bool> {
        Ok(self.is_robust_at(plan, &region.pnt_lo())?
            && self.is_robust_at(plan, &region.pnt_hi())?)
    }

    /// Exactly verify Definition 1 at *every* cell of a region, without
    /// visiting every cell. Used by tests and the evaluation harness — the
    /// algorithms themselves rely on the corner bound to stay cheap.
    ///
    /// Monotonicity gives two corner-only bounds per sub-region:
    ///
    /// * if `cost(lp, pntHi) ≤ (1+ε)·opt(pntLo)` the plan is robust at every
    ///   interior cell (its cost is at most the hi-corner cost, the optimum is
    ///   at least the lo-corner optimum), and
    /// * if the plan fails Definition 1 at either corner, the region as a
    ///   whole fails.
    ///
    /// Where neither bound decides, the region is bisected and both halves
    /// are checked recursively, bottoming out at single cells (where
    /// Definition 1 is evaluated directly). The verdict is identical to the
    /// cell loop it replaces; the optimizer-call count is usually a tiny
    /// fraction of the region's volume.
    pub fn is_robust_everywhere(&self, plan: &LogicalPlan, region: &Region) -> Result<bool> {
        // Corner failures settle the whole region negatively.
        if !self.is_robust_at(plan, &region.pnt_lo())?
            || !self.is_robust_at(plan, &region.pnt_hi())?
        {
            return Ok(false);
        }
        if region.is_single_cell() {
            return Ok(true);
        }
        // Strong monotone bound: hi-corner plan cost within (1+ε) of the
        // lo-corner optimum ⇒ robust at every cell in between.
        let cost_hi = self.plan_cost_at(plan, &region.pnt_hi())?;
        let opt_lo = self.optimal_cost_at(&region.pnt_lo())?;
        if cost_hi <= (1.0 + self.epsilon) * opt_lo + 1e-12 {
            return Ok(true);
        }
        for half in region.bisect() {
            if !self.is_robust_everywhere(plan, &half)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Whether a solution already contains a plan equal to `plan`.
    pub fn solution_contains(&self, solution: &RobustLogicalSolution, plan: &LogicalPlan) -> bool {
        solution.contains_plan(plan)
    }

    fn shard_of(&self, point: &GridPoint) -> usize {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        point.hash(&mut hasher);
        (hasher.finish() as usize) % CACHE_SHARDS
    }

    fn cached_optimum(&self, point: &GridPoint) -> Result<CachedOptimum> {
        // Grab (or create) the point's slot under the shard lock — cheap —
        // then compute under the slot's own lock. Concurrent probes of
        // *different* points in the same shard are not serialized behind the
        // optimizer call, while racing probes of the *same* point wait on
        // the slot instead of duplicating the call, keeping the optimizer
        // call count deterministic in parallel mode.
        let slot = {
            let mut shard = self.cache[self.shard_of(point)]
                .lock()
                .expect("cache shard poisoned");
            Arc::clone(shard.entry(point.clone()).or_default())
        };
        let mut guard = slot.lock().expect("cache slot poisoned");
        if let Some(hit) = guard.as_ref() {
            return Ok(hit.clone());
        }
        let stats = self.space.snapshot_at(point);
        let plan = self.optimizer.optimize(&stats)?;
        let cost = self.optimizer.plan_cost(&plan, &stats)?;
        let entry = CachedOptimum { plan, cost };
        *guard = Some(entry.clone());
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{Query, UncertaintyLevel};
    use rld_query::JoinOrderOptimizer;

    fn setup(epsilon: f64) -> (Query, ParameterSpace) {
        let q = Query::q1_stock_monitoring();
        let estimates = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&estimates, q.default_stats(), 9).unwrap();
        let _ = epsilon;
        (q, space)
    }

    #[test]
    fn optimal_plan_is_always_robust_at_its_point() {
        let (q, space) = setup(0.1);
        let opt = JoinOrderOptimizer::new(q);
        let checker = RobustnessChecker::new(&opt, &space, 0.1);
        for point in [space.pnt_lo(), space.pnt_hi(), space.centre()] {
            let plan = checker.optimal_plan_at(&point).unwrap();
            assert!(checker.is_robust_at(&plan, &point).unwrap());
        }
    }

    #[test]
    fn cache_avoids_duplicate_optimizer_calls() {
        let (q, space) = setup(0.1);
        let opt = JoinOrderOptimizer::new(q);
        let checker = RobustnessChecker::new(&opt, &space, 0.1);
        let p = space.pnt_hi();
        checker.optimal_plan_at(&p).unwrap();
        checker.optimal_plan_at(&p).unwrap();
        checker.optimal_cost_at(&p).unwrap();
        assert_eq!(checker.optimizer_calls(), 1);
        checker.optimal_plan_at(&space.pnt_lo()).unwrap();
        assert_eq!(checker.optimizer_calls(), 2);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let (q, space) = setup(0.1);
        let opt = JoinOrderOptimizer::new(q);
        let checker = RobustnessChecker::new(&opt, &space, 0.1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for point in space.iter_grid() {
                        checker.optimal_cost_at(&point).unwrap();
                    }
                });
            }
        });
        // The in-flight slot guard means racing threads never duplicate a
        // call: exactly one optimizer call per distinct grid point.
        assert_eq!(checker.optimizer_calls(), space.total_cells());
        for point in space.iter_grid() {
            checker.optimal_cost_at(&point).unwrap();
        }
        assert_eq!(checker.optimizer_calls(), space.total_cells());
    }

    #[test]
    fn large_epsilon_accepts_more_plans() {
        let (q, space) = setup(0.0);
        let opt = JoinOrderOptimizer::new(q.clone());
        let tight = RobustnessChecker::new(&opt, &space, 0.0);
        let loose = RobustnessChecker::new(&opt, &space, 10.0);
        // A deliberately bad plan: reverse of the optimum at pntHi.
        let hi = space.pnt_hi();
        let best = tight.optimal_plan_at(&hi).unwrap();
        let mut rev: Vec<_> = best.ordering().to_vec();
        rev.reverse();
        let bad = LogicalPlan::new(rev);
        // With a huge epsilon everything is robust.
        assert!(loose.is_robust_at(&bad, &hi).unwrap());
        // With epsilon == 0 only optimal-cost plans are robust.
        let bad_cost = tight.plan_cost_at(&bad, &hi).unwrap();
        let opt_cost = tight.optimal_cost_at(&hi).unwrap();
        if bad_cost > opt_cost * 1.0001 {
            assert!(!tight.is_robust_at(&bad, &hi).unwrap());
        }
    }

    #[test]
    fn region_robustness_checks_both_corners() {
        let (q, space) = setup(0.2);
        let opt = JoinOrderOptimizer::new(q);
        let checker = RobustnessChecker::new(&opt, &space, 0.2);
        let region = Region::full(&space);
        let lo_plan = checker.optimal_plan_at(&region.pnt_lo()).unwrap();
        let robust = checker.is_robust_in_region(&lo_plan, &region).unwrap();
        // Whatever the verdict, it must agree with checking the corners directly.
        let expected = checker.is_robust_at(&lo_plan, &region.pnt_lo()).unwrap()
            && checker.is_robust_at(&lo_plan, &region.pnt_hi()).unwrap();
        assert_eq!(robust, expected);
    }

    #[test]
    fn everywhere_check_implies_corner_check() {
        let (q, space) = setup(0.3);
        let opt = JoinOrderOptimizer::new(q);
        let checker = RobustnessChecker::new(&opt, &space, 0.3);
        let region = Region::new(vec![0, 0], vec![3, 3]);
        let plan = checker.optimal_plan_at(&region.pnt_lo()).unwrap();
        if checker.is_robust_everywhere(&plan, &region).unwrap() {
            assert!(checker.is_robust_in_region(&plan, &region).unwrap());
        }
    }

    #[test]
    fn bisection_everywhere_check_matches_cell_loop() {
        let (q, space) = setup(0.2);
        let opt = JoinOrderOptimizer::new(q.clone());
        // Several plans × several epsilons × several regions: the bisection
        // verdict must equal the literal per-cell Definition 1 loop.
        for epsilon in [0.0, 0.05, 0.2, 1.0] {
            let checker = RobustnessChecker::new(&opt, &space, epsilon);
            let regions = [
                Region::full(&space),
                Region::new(vec![0, 0], vec![3, 8]),
                Region::new(vec![5, 2], vec![8, 6]),
                Region::new(vec![4, 4], vec![4, 4]),
            ];
            let plans = [
                checker.optimal_plan_at(&space.pnt_lo()).unwrap(),
                checker.optimal_plan_at(&space.pnt_hi()).unwrap(),
                checker.optimal_plan_at(&space.centre()).unwrap(),
            ];
            for region in &regions {
                for plan in &plans {
                    let mut by_cells = true;
                    for cell in region.cells() {
                        if !checker.is_robust_at(plan, &cell).unwrap() {
                            by_cells = false;
                            break;
                        }
                    }
                    assert_eq!(
                        checker.is_robust_everywhere(plan, region).unwrap(),
                        by_cells,
                        "mismatch for {region} at epsilon {epsilon}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be non-negative")]
    fn negative_epsilon_panics() {
        let (q, space) = setup(0.1);
        let opt = JoinOrderOptimizer::new(q);
        let _ = RobustnessChecker::new(&opt, &space, -0.5);
    }
}
