//! ε-robustness checking (Definition 1) with memoized optimizer calls.
//!
//! Definition 1: a logical plan `lp` is ε-robust in a sub-space `S_i` when
//!
//! ```text
//! cost(lp, pntHi) ≤ (1 + ε) · cost(lp_opt@pntHi, pntHi)
//! ```
//!
//! Because the cost model is monotone along every dimension (§2.3), a plan
//! that is within `(1+ε)` of the optimum at *both* corners of a sub-space has
//! its cost at every interior point bounded between its own cost at `pntLo`
//! and `(1+ε)` times the optimal cost at `pntHi` — the provable bound the
//! paper describes after Definition 1. The checker therefore verifies both
//! corners.
//!
//! The checker memoizes optimizer results and plan costs per grid point so
//! that corners shared between neighbouring sub-spaces are optimized only
//! once; the number of *distinct* optimizer invocations is what the
//! partitioning algorithms report (the quantity the paper minimizes).

use crate::solution::RobustLogicalSolution;
use rld_common::{Result, StatsSnapshot};
use rld_paramspace::{GridPoint, ParameterSpace, Region};
use rld_query::{LogicalPlan, Optimizer};
use std::cell::RefCell;
use std::collections::HashMap;

/// Robustness checker bound to an optimizer, a parameter space and a
/// robustness threshold ε.
pub struct RobustnessChecker<'a, O: Optimizer> {
    optimizer: &'a O,
    space: &'a ParameterSpace,
    epsilon: f64,
    cache: RefCell<HashMap<GridPoint, CachedOptimum>>,
}

#[derive(Clone)]
struct CachedOptimum {
    plan: LogicalPlan,
    cost: f64,
}

impl<'a, O: Optimizer> RobustnessChecker<'a, O> {
    /// Create a checker. `epsilon` is the robustness threshold of Definition 1
    /// (the paper sweeps 0.1–0.3).
    pub fn new(optimizer: &'a O, space: &'a ParameterSpace, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self {
            optimizer,
            space,
            epsilon,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The robustness threshold ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The parameter space being searched.
    pub fn space(&self) -> &ParameterSpace {
        self.space
    }

    /// Number of optimizer calls made through this checker so far
    /// (cache hits are free).
    pub fn optimizer_calls(&self) -> usize {
        self.optimizer.call_count()
    }

    /// The statistics snapshot at a grid point.
    pub fn snapshot_at(&self, point: &GridPoint) -> StatsSnapshot {
        self.space.snapshot_at(point)
    }

    /// The optimal plan at a grid point, memoized.
    pub fn optimal_plan_at(&self, point: &GridPoint) -> Result<LogicalPlan> {
        Ok(self.cached_optimum(point)?.plan)
    }

    /// The optimal plan's cost at a grid point, memoized.
    pub fn optimal_cost_at(&self, point: &GridPoint) -> Result<f64> {
        Ok(self.cached_optimum(point)?.cost)
    }

    /// Cost of an arbitrary plan at a grid point.
    pub fn plan_cost_at(&self, plan: &LogicalPlan, point: &GridPoint) -> Result<f64> {
        let stats = self.space.snapshot_at(point);
        self.optimizer.plan_cost(plan, &stats)
    }

    /// Definition 1 at a single grid point: is `plan` within `(1+ε)` of the
    /// optimum at that point?
    pub fn is_robust_at(&self, plan: &LogicalPlan, point: &GridPoint) -> Result<bool> {
        let optimal = self.optimal_cost_at(point)?;
        let cost = self.plan_cost_at(plan, point)?;
        Ok(cost <= (1.0 + self.epsilon) * optimal + 1e-12)
    }

    /// Region-level robustness used by the partitioning algorithms: `plan` is
    /// accepted for `region` when it satisfies Definition 1 at both corners
    /// (`pntLo` and `pntHi`), which by cost monotonicity bounds its cost over
    /// the whole sub-space.
    pub fn is_robust_in_region(&self, plan: &LogicalPlan, region: &Region) -> Result<bool> {
        Ok(self.is_robust_at(plan, &region.pnt_lo())?
            && self.is_robust_at(plan, &region.pnt_hi())?)
    }

    /// Exhaustively verify Definition 1 at *every* cell of a region. Only
    /// used by tests and the evaluation harness — the algorithms themselves
    /// rely on the corner bound to stay cheap.
    pub fn is_robust_everywhere(&self, plan: &LogicalPlan, region: &Region) -> Result<bool> {
        for cell in region.cells() {
            if !self.is_robust_at(plan, &cell)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Whether a solution already contains a plan equal to `plan`.
    pub fn solution_contains(&self, solution: &RobustLogicalSolution, plan: &LogicalPlan) -> bool {
        solution.contains_plan(plan)
    }

    fn cached_optimum(&self, point: &GridPoint) -> Result<CachedOptimum> {
        if let Some(hit) = self.cache.borrow().get(point) {
            return Ok(hit.clone());
        }
        let stats = self.space.snapshot_at(point);
        let plan = self.optimizer.optimize(&stats)?;
        let cost = self.optimizer.plan_cost(&plan, &stats)?;
        let entry = CachedOptimum { plan, cost };
        self.cache.borrow_mut().insert(point.clone(), entry.clone());
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{Query, UncertaintyLevel};
    use rld_query::JoinOrderOptimizer;

    fn setup(epsilon: f64) -> (Query, ParameterSpace) {
        let q = Query::q1_stock_monitoring();
        let estimates = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&estimates, q.default_stats(), 9).unwrap();
        let _ = epsilon;
        (q, space)
    }

    #[test]
    fn optimal_plan_is_always_robust_at_its_point() {
        let (q, space) = setup(0.1);
        let opt = JoinOrderOptimizer::new(q);
        let checker = RobustnessChecker::new(&opt, &space, 0.1);
        for point in [space.pnt_lo(), space.pnt_hi(), space.centre()] {
            let plan = checker.optimal_plan_at(&point).unwrap();
            assert!(checker.is_robust_at(&plan, &point).unwrap());
        }
    }

    #[test]
    fn cache_avoids_duplicate_optimizer_calls() {
        let (q, space) = setup(0.1);
        let opt = JoinOrderOptimizer::new(q);
        let checker = RobustnessChecker::new(&opt, &space, 0.1);
        let p = space.pnt_hi();
        checker.optimal_plan_at(&p).unwrap();
        checker.optimal_plan_at(&p).unwrap();
        checker.optimal_cost_at(&p).unwrap();
        assert_eq!(checker.optimizer_calls(), 1);
        checker.optimal_plan_at(&space.pnt_lo()).unwrap();
        assert_eq!(checker.optimizer_calls(), 2);
    }

    #[test]
    fn large_epsilon_accepts_more_plans() {
        let (q, space) = setup(0.0);
        let opt = JoinOrderOptimizer::new(q.clone());
        let tight = RobustnessChecker::new(&opt, &space, 0.0);
        let loose = RobustnessChecker::new(&opt, &space, 10.0);
        // A deliberately bad plan: reverse of the optimum at pntHi.
        let hi = space.pnt_hi();
        let best = tight.optimal_plan_at(&hi).unwrap();
        let mut rev: Vec<_> = best.ordering().to_vec();
        rev.reverse();
        let bad = LogicalPlan::new(rev);
        // With a huge epsilon everything is robust.
        assert!(loose.is_robust_at(&bad, &hi).unwrap());
        // With epsilon == 0 only optimal-cost plans are robust.
        let bad_cost = tight.plan_cost_at(&bad, &hi).unwrap();
        let opt_cost = tight.optimal_cost_at(&hi).unwrap();
        if bad_cost > opt_cost * 1.0001 {
            assert!(!tight.is_robust_at(&bad, &hi).unwrap());
        }
    }

    #[test]
    fn region_robustness_checks_both_corners() {
        let (q, space) = setup(0.2);
        let opt = JoinOrderOptimizer::new(q);
        let checker = RobustnessChecker::new(&opt, &space, 0.2);
        let region = Region::full(&space);
        let lo_plan = checker.optimal_plan_at(&region.pnt_lo()).unwrap();
        let robust = checker.is_robust_in_region(&lo_plan, &region).unwrap();
        // Whatever the verdict, it must agree with checking the corners directly.
        let expected = checker.is_robust_at(&lo_plan, &region.pnt_lo()).unwrap()
            && checker.is_robust_at(&lo_plan, &region.pnt_hi()).unwrap();
        assert_eq!(robust, expected);
    }

    #[test]
    fn everywhere_check_implies_corner_check() {
        let (q, space) = setup(0.3);
        let opt = JoinOrderOptimizer::new(q);
        let checker = RobustnessChecker::new(&opt, &space, 0.3);
        let region = Region::new(vec![0, 0], vec![3, 3]);
        let plan = checker.optimal_plan_at(&region.pnt_lo()).unwrap();
        if checker.is_robust_everywhere(&plan, &region).unwrap() {
            assert!(checker.is_robust_in_region(&plan, &region).unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be non-negative")]
    fn negative_epsilon_panics() {
        let (q, space) = setup(0.1);
        let opt = JoinOrderOptimizer::new(q);
        let _ = RobustnessChecker::new(&opt, &space, -0.5);
    }
}
