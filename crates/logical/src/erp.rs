//! Early-terminated Robust Partitioning (ERP, Algorithm 3).
//!
//! ERP runs the same weight-driven partitioning as WRP but maintains an
//! *aging counter*: every optimizer probe that fails to reveal a plan not yet
//! in the solution increments the counter; a new distinct plan resets it.
//! Once the counter exceeds the threshold
//!
//! ```text
//! c0 = (1 + ε_conf^{-1/2}) / δ
//! ```
//!
//! the search stops. Theorem 1 guarantees that, with probability at least
//! `1 − ε_conf`, the total area of all still-missing robust plans is at most
//! `δ`; Theorem 2 sharpens this per plan: a plan whose robust area is at
//! least `γ·δ` is missed with probability at most `e^{-γ(1 + ε_conf^{-1/2})}`.

use crate::robustness::RobustnessChecker;
use crate::solution::RobustLogicalSolution;
use crate::stats::SearchStats;
use crate::wrp::{partition_search, AgingTermination};
use crate::LogicalPlanGenerator;
use rld_common::Result;
use rld_paramspace::{DistanceMetric, ParameterSpace};
use rld_query::Optimizer;
use serde::{Deserialize, Serialize};

/// Configuration of ERP's probabilistic early-termination rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErpConfig {
    /// Robustness threshold ε of Definition 1 (plan cost may exceed the
    /// optimum by this relative factor). The paper sweeps 0.1–0.3.
    pub robustness_epsilon: f64,
    /// Failure-probability bound ε of Theorem 1 (confidence is `1 − ε`).
    pub confidence_epsilon: f64,
    /// Area bound δ of Theorem 1: with high probability the missing robust
    /// plans jointly cover at most this fraction of the space.
    pub area_delta: f64,
}

impl Default for ErpConfig {
    fn default() -> Self {
        Self {
            robustness_epsilon: 0.2,
            confidence_epsilon: 0.25,
            area_delta: 0.15,
        }
    }
}

impl ErpConfig {
    /// Create a config with the given robustness threshold and the default
    /// probabilistic parameters.
    pub fn with_epsilon(robustness_epsilon: f64) -> Self {
        Self {
            robustness_epsilon,
            ..Self::default()
        }
    }

    /// The aging threshold `c0 = (1 + ε^{-1/2}) / δ` of Theorem 1 (rounded up).
    pub fn aging_threshold(&self) -> usize {
        assert!(
            self.confidence_epsilon > 0.0 && self.confidence_epsilon < 1.0,
            "confidence epsilon must be in (0, 1)"
        );
        assert!(
            self.area_delta > 0.0 && self.area_delta <= 1.0,
            "area delta must be in (0, 1]"
        );
        let c0 = (1.0 + self.confidence_epsilon.powf(-0.5)) / self.area_delta;
        c0.ceil() as usize
    }

    /// Theorem 2's bound on the probability of missing a robust plan whose
    /// robust area is at least `gamma · delta` of the space:
    /// `e^{-γ (1 + ε^{-1/2})}`.
    pub fn missing_plan_probability(&self, gamma: f64) -> f64 {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        (-gamma * (1.0 + self.confidence_epsilon.powf(-0.5))).exp()
    }
}

/// Early-terminated Robust Partitioning (Algorithm 3).
pub struct EarlyTerminatedRobustPartitioning<'a, O: Optimizer> {
    checker: RobustnessChecker<'a, O>,
    config: ErpConfig,
    metric: DistanceMetric,
    parallelism: usize,
}

impl<'a, O: Optimizer> EarlyTerminatedRobustPartitioning<'a, O> {
    /// Create an ERP generator.
    pub fn new(optimizer: &'a O, space: &'a ParameterSpace, config: ErpConfig) -> Self {
        Self {
            checker: RobustnessChecker::new(optimizer, space, config.robustness_epsilon),
            config,
            metric: DistanceMetric::default(),
            parallelism: 1,
        }
    }

    /// Use a specific distance metric for the weight function.
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Probe each partitioning frontier on `parallelism` worker threads.
    /// The produced solution is identical to the sequential one (see the
    /// engine docs in [`crate::wrp`]); `0` and `1` mean sequential.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &ErpConfig {
        &self.config
    }

    /// Access the underlying robustness checker.
    pub fn checker(&self) -> &RobustnessChecker<'a, O> {
        &self.checker
    }
}

impl<'a, O: Optimizer + Sync> LogicalPlanGenerator for EarlyTerminatedRobustPartitioning<'a, O> {
    fn name(&self) -> &'static str {
        "ERP"
    }

    fn generate(&self) -> Result<(RobustLogicalSolution, SearchStats)> {
        let termination = AgingTermination {
            threshold: self.config.aging_threshold(),
        };
        let out = partition_search(
            &self.checker,
            Some(termination),
            None,
            self.metric,
            self.parallelism,
        )?;
        Ok((out.solution, out.stats))
    }

    fn generate_with_budget(
        &self,
        max_calls: usize,
    ) -> Result<(RobustLogicalSolution, SearchStats)> {
        let termination = AgingTermination {
            threshold: self.config.aging_threshold(),
        };
        let out = partition_search(
            &self.checker,
            Some(termination),
            Some(max_calls),
            self.metric,
            self.parallelism,
        )?;
        Ok((out.solution, out.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::CoverageEvaluator;
    use crate::exhaustive::ExhaustiveSearch;
    use crate::random::RandomSearch;
    use rld_common::{Query, UncertaintyLevel};
    use rld_query::JoinOrderOptimizer;

    fn setup(steps: usize, u: u32) -> (Query, ParameterSpace) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(u))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), steps).unwrap();
        (q, space)
    }

    #[test]
    fn aging_threshold_formula() {
        let cfg = ErpConfig {
            robustness_epsilon: 0.2,
            confidence_epsilon: 0.25,
            area_delta: 0.1,
        };
        // (1 + 1/sqrt(0.25)) / 0.1 = 30
        assert_eq!(cfg.aging_threshold(), 30);
        let cfg2 = ErpConfig {
            confidence_epsilon: 0.04,
            area_delta: 0.2,
            ..cfg
        };
        // (1 + 5) / 0.2 = 30
        assert_eq!(cfg2.aging_threshold(), 30);
    }

    #[test]
    fn theorem2_bound_decreases_exponentially_with_area() {
        let cfg = ErpConfig::default();
        let p1 = cfg.missing_plan_probability(0.5);
        let p2 = cfg.missing_plan_probability(1.0);
        let p3 = cfg.missing_plan_probability(2.0);
        assert!(p1 > p2 && p2 > p3);
        assert!(p3 < 0.01);
        assert!((cfg.missing_plan_probability(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erp_covers_space_with_fewer_calls_than_es() {
        let (q, space) = setup(9, 3);
        let opt_erp = JoinOrderOptimizer::new(q.clone());
        let opt_es = JoinOrderOptimizer::new(q.clone());
        let erp =
            EarlyTerminatedRobustPartitioning::new(&opt_erp, &space, ErpConfig::with_epsilon(0.2));
        let es = ExhaustiveSearch::new(&opt_es, &space);
        let (erp_sol, erp_stats) = erp.generate().unwrap();
        let (_, es_stats) = es.generate().unwrap();
        assert!(erp_stats.optimizer_calls < es_stats.optimizer_calls);
        let ev = CoverageEvaluator::new(q.clone(), space.clone(), 0.2).unwrap();
        let cov = ev.true_coverage(&erp_sol).unwrap();
        assert!(cov > 0.8, "ERP coverage too low: {cov}");
        assert_eq!(erp.name(), "ERP");
    }

    #[test]
    fn erp_coverage_at_least_rs_coverage_for_same_budget() {
        let (q, space) = setup(9, 3);
        let budget = 20;
        let opt_erp = JoinOrderOptimizer::new(q.clone());
        let opt_rs = JoinOrderOptimizer::new(q.clone());
        let erp =
            EarlyTerminatedRobustPartitioning::new(&opt_erp, &space, ErpConfig::with_epsilon(0.2));
        let rs = RandomSearch::new(&opt_rs, &space, 17);
        let (erp_sol, _) = erp.generate_with_budget(budget).unwrap();
        let (rs_sol, _) = rs.generate_with_budget(budget).unwrap();
        let ev = CoverageEvaluator::new(q.clone(), space.clone(), 0.2).unwrap();
        let erp_cov = ev.true_coverage(&erp_sol).unwrap();
        let rs_cov = ev.true_coverage(&rs_sol).unwrap();
        // ERP's weight-driven choice should not be (much) worse than random.
        assert!(
            erp_cov + 0.15 >= rs_cov,
            "ERP coverage {erp_cov} much worse than RS coverage {rs_cov}"
        );
    }

    #[test]
    fn smaller_area_delta_means_more_patience() {
        let patient = ErpConfig {
            area_delta: 0.05,
            ..ErpConfig::default()
        };
        let hasty = ErpConfig {
            area_delta: 0.5,
            ..ErpConfig::default()
        };
        assert!(patient.aging_threshold() > hasty.aging_threshold());
    }

    #[test]
    fn erp_is_deterministic() {
        let (q, space) = setup(9, 2);
        let opt_a = JoinOrderOptimizer::new(q.clone());
        let opt_b = JoinOrderOptimizer::new(q);
        let a = EarlyTerminatedRobustPartitioning::new(&opt_a, &space, ErpConfig::default())
            .generate()
            .unwrap();
        let b = EarlyTerminatedRobustPartitioning::new(&opt_b, &space, ErpConfig::default())
            .generate()
            .unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.optimizer_calls, b.1.optimizer_calls);
    }

    #[test]
    fn parallel_erp_matches_sequential_solution() {
        for u in [2u32, 3] {
            let (q, space) = setup(9, u);
            let opt_seq = JoinOrderOptimizer::new(q.clone());
            let opt_par = JoinOrderOptimizer::new(q.clone());
            let cfg = ErpConfig::with_epsilon(0.2);
            let seq = EarlyTerminatedRobustPartitioning::new(&opt_seq, &space, cfg);
            let par =
                EarlyTerminatedRobustPartitioning::new(&opt_par, &space, cfg).with_parallelism(4);
            let (sol_seq, stats_seq) = seq.generate().unwrap();
            let (sol_par, stats_par) = par.generate().unwrap();
            assert_eq!(sol_seq, sol_par, "parallel ERP diverged at U={u}");
            assert_eq!(stats_seq.regions_examined, stats_par.regions_examined);
            assert_eq!(stats_seq.distinct_plans, stats_par.distinct_plans);
        }
    }

    #[test]
    #[should_panic(expected = "confidence epsilon must be in (0, 1)")]
    fn invalid_confidence_panics() {
        let cfg = ErpConfig {
            confidence_epsilon: 1.5,
            ..ErpConfig::default()
        };
        cfg.aging_threshold();
    }
}
