//! Robust logical solutions: sets of ε-robust plans with their robust regions.

use rld_paramspace::{
    region::union_cell_count, GridPoint, OccurrenceModel, ParameterSpace, Region, RegionSet,
};
use rld_query::LogicalPlan;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One robust logical plan together with the parameter-space regions where it
/// was verified ε-robust (its robust region, Definition 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionEntry {
    /// The plan.
    pub plan: LogicalPlan,
    /// Regions (possibly many, possibly single cells) where the plan is robust.
    pub regions: Vec<Region>,
}

impl SolutionEntry {
    /// Create an entry.
    pub fn new(plan: LogicalPlan, regions: Vec<Region>) -> Self {
        Self { plan, regions }
    }

    /// Total number of grid cells covered by this entry (overlaps counted once).
    pub fn cell_count(&self) -> usize {
        union_cell_count(&self.regions)
    }

    /// Exact covered volume of the entry's robust region in `u128` (overlaps
    /// counted once, no overflow, no cell enumeration).
    pub fn volume(&self) -> u128 {
        RegionSet::from_regions(&self.regions).volume()
    }

    /// Whether the entry's robust region contains a grid point.
    pub fn covers(&self, point: &GridPoint) -> bool {
        self.regions.iter().any(|r| r.contains(point))
    }

    /// The occurrence-probability weight of this plan (§5.2), i.e. the
    /// probability that the runtime statistics fall in its robust region.
    pub fn occurrence_weight(&self, space: &ParameterSpace, model: OccurrenceModel) -> f64 {
        model.plan_weight(space, &self.regions)
    }
}

/// A robust logical solution `LP_i`: the output of the §4 algorithms and the
/// input to physical plan generation (§5).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RobustLogicalSolution {
    entries: Vec<SolutionEntry>,
}

impl RobustLogicalSolution {
    /// Create an empty solution.
    pub fn new() -> Self {
        Self::default()
    }

    /// The solution's entries.
    pub fn entries(&self) -> &[SolutionEntry] {
        &self.entries
    }

    /// Number of distinct plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the solution has no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All plans, in insertion order.
    pub fn plans(&self) -> impl Iterator<Item = &LogicalPlan> {
        self.entries.iter().map(|e| &e.plan)
    }

    /// Whether the solution already contains this exact plan.
    pub fn contains_plan(&self, plan: &LogicalPlan) -> bool {
        self.entries.iter().any(|e| &e.plan == plan)
    }

    /// Add a region to a plan's robust region, inserting the plan if it is
    /// new. Returns `true` when the plan was not previously in the solution
    /// (i.e. a *distinct* robust plan was discovered — the event that resets
    /// ERP's aging counter).
    pub fn add(&mut self, plan: LogicalPlan, region: Region) -> bool {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.plan == plan) {
            if !entry.regions.contains(&region) {
                entry.regions.push(region);
            }
            false
        } else {
            self.entries.push(SolutionEntry::new(plan, vec![region]));
            true
        }
    }

    /// Remove a plan (used by GreedyPhy when dropping the least important
    /// logical plan). Returns the removed entry, if present.
    pub fn remove_plan(&mut self, plan: &LogicalPlan) -> Option<SolutionEntry> {
        let idx = self.entries.iter().position(|e| &e.plan == plan)?;
        Some(self.entries.remove(idx))
    }

    /// The entry whose robust region contains `point`, preferring the entry
    /// covering it with the largest robust region (ties broken by insertion
    /// order). Used by the runtime online classifier.
    pub fn entry_covering(&self, point: &GridPoint) -> Option<&SolutionEntry> {
        self.entries
            .iter()
            .filter(|e| e.covers(point))
            .max_by_key(|e| e.volume())
    }

    /// The plan assigned to a grid point: the covering plan if any, otherwise
    /// the plan whose robust region is closest to the point (Manhattan
    /// distance between region corners and the point). Returns `None` only
    /// for an empty solution.
    pub fn plan_for(&self, point: &GridPoint) -> Option<&LogicalPlan> {
        if let Some(e) = self.entry_covering(point) {
            return Some(&e.plan);
        }
        self.entries
            .iter()
            .min_by_key(|e| {
                e.regions
                    .iter()
                    .map(|r| region_distance(r, point))
                    .min()
                    .unwrap_or(usize::MAX)
            })
            .map(|e| &e.plan)
    }

    /// Fraction of the space's grid cells covered by at least one entry's
    /// *claimed* robust region (overlaps counted once). This is the cheap
    /// structural coverage; the evaluator computes true ε-robust coverage.
    pub fn claimed_coverage(&self, space: &ParameterSpace) -> f64 {
        RegionSet::from_regions(self.entries.iter().flat_map(|e| e.regions.iter()))
            .coverage_fraction(space)
    }

    /// Stable FNV-1a fingerprint over the solution's plans and robust
    /// regions (order-sensitive, so it is deterministic for a deterministic
    /// solver run).
    ///
    /// Downstream consumers that re-solve physical placement across repeated
    /// WRP/ERP frontier evaluations — GreedyPhy's pack memo, the
    /// `SolverStats` carried on every deployment — use this to detect an
    /// unchanged plan set without deep comparison.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.entries.len() as u64);
        for e in &self.entries {
            for op in e.plan.ordering() {
                mix(op.index() as u64);
            }
            mix(u64::MAX); // plan/region delimiter
            mix(e.regions.len() as u64);
            for r in &e.regions {
                for v in r.lo.iter().chain(&r.hi) {
                    mix(*v as u64);
                }
            }
        }
        h
    }

    /// Occurrence-probability weight of every plan (§5.2), in entry order.
    pub fn plan_weights(&self, space: &ParameterSpace, model: OccurrenceModel) -> Vec<f64> {
        self.entries
            .iter()
            .map(|e| e.occurrence_weight(space, model))
            .collect()
    }
}

fn region_distance(region: &Region, point: &GridPoint) -> usize {
    point
        .indices
        .iter()
        .zip(region.lo.iter().zip(&region.hi))
        .map(|(x, (lo, hi))| {
            if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0
            }
        })
        .sum()
}

impl fmt::Display for RobustLogicalSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RobustLogicalSolution ({} plans):", self.len())?;
        for (i, e) in self.entries.iter().enumerate() {
            writeln!(
                f,
                "  lp{}: {} ({} regions, {} cells)",
                i,
                e.plan,
                e.regions.len(),
                e.cell_count()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{OperatorId, StatKey, StatisticEstimate, StatsSnapshot, UncertaintyLevel};

    fn plan(v: &[usize]) -> LogicalPlan {
        LogicalPlan::new(v.iter().map(|i| OperatorId::new(*i)).collect())
    }

    fn space_2d(steps: usize) -> ParameterSpace {
        let estimates = vec![
            StatisticEstimate::new(
                StatKey::Selectivity(OperatorId::new(0)),
                0.5,
                UncertaintyLevel::new(2),
            ),
            StatisticEstimate::new(
                StatKey::Selectivity(OperatorId::new(1)),
                0.5,
                UncertaintyLevel::new(2),
            ),
        ];
        ParameterSpace::from_estimates(&estimates, StatsSnapshot::new(), steps).unwrap()
    }

    #[test]
    fn add_reports_distinct_plan_discovery() {
        let mut sol = RobustLogicalSolution::new();
        assert!(sol.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![3, 3])));
        assert!(!sol.add(plan(&[0, 1]), Region::new(vec![4, 0], vec![8, 3])));
        assert!(sol.add(plan(&[1, 0]), Region::new(vec![0, 4], vec![8, 8])));
        assert_eq!(sol.len(), 2);
        assert_eq!(sol.entries()[0].regions.len(), 2);
    }

    #[test]
    fn duplicate_region_not_added_twice() {
        let mut sol = RobustLogicalSolution::new();
        let r = Region::new(vec![0, 0], vec![1, 1]);
        sol.add(plan(&[0, 1]), r.clone());
        sol.add(plan(&[0, 1]), r.clone());
        assert_eq!(sol.entries()[0].regions.len(), 1);
    }

    #[test]
    fn covering_entry_prefers_largest_region() {
        let mut sol = RobustLogicalSolution::new();
        sol.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![2, 2]));
        sol.add(plan(&[1, 0]), Region::new(vec![0, 0], vec![8, 8]));
        let e = sol.entry_covering(&GridPoint::new(vec![1, 1])).unwrap();
        assert_eq!(e.plan, plan(&[1, 0]));
    }

    #[test]
    fn plan_for_falls_back_to_nearest() {
        let mut sol = RobustLogicalSolution::new();
        sol.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![2, 2]));
        sol.add(plan(&[1, 0]), Region::new(vec![6, 6], vec![8, 8]));
        // A point outside both regions but near the second.
        let p = sol.plan_for(&GridPoint::new(vec![5, 5])).unwrap();
        assert_eq!(*p, plan(&[1, 0]));
        // Empty solution yields None.
        assert!(RobustLogicalSolution::new()
            .plan_for(&GridPoint::new(vec![0, 0]))
            .is_none());
    }

    #[test]
    fn claimed_coverage_counts_overlap_once() {
        let space = space_2d(9);
        let mut sol = RobustLogicalSolution::new();
        sol.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![4, 8]));
        sol.add(plan(&[1, 0]), Region::new(vec![4, 0], vec![8, 8]));
        let cov = sol.claimed_coverage(&space);
        assert!((cov - 1.0).abs() < 1e-9);
        // Non-covering solution.
        let mut partial = RobustLogicalSolution::new();
        partial.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![3, 3]));
        assert!(partial.claimed_coverage(&space) < 0.5);
    }

    #[test]
    fn weights_sum_matches_union_probability_for_disjoint_regions() {
        let space = space_2d(9);
        let mut sol = RobustLogicalSolution::new();
        sol.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![4, 8]));
        sol.add(plan(&[1, 0]), Region::new(vec![5, 0], vec![8, 8]));
        let weights = sol.plan_weights(&space, OccurrenceModel::Uniform);
        assert_eq!(weights.len(), 2);
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Normal model gives higher weight to the entry containing the centre.
        let weights_n = sol.plan_weights(&space, OccurrenceModel::Normal);
        assert!(weights_n[0] > weights_n[1] * 0.5);
    }

    #[test]
    fn remove_plan() {
        let mut sol = RobustLogicalSolution::new();
        sol.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![1, 1]));
        assert!(sol.remove_plan(&plan(&[9, 9])).is_none());
        let removed = sol.remove_plan(&plan(&[0, 1])).unwrap();
        assert_eq!(removed.plan, plan(&[0, 1]));
        assert!(sol.is_empty());
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let mut a = RobustLogicalSolution::new();
        a.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![3, 3]));
        a.add(plan(&[1, 0]), Region::new(vec![4, 0], vec![8, 3]));
        let mut same = RobustLogicalSolution::new();
        same.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![3, 3]));
        same.add(plan(&[1, 0]), Region::new(vec![4, 0], vec![8, 3]));
        assert_eq!(a.fingerprint(), same.fingerprint());
        // A different region changes the fingerprint; so does a new plan.
        let mut other_region = same.clone();
        other_region.add(plan(&[0, 1]), Region::new(vec![0, 4], vec![3, 8]));
        assert_ne!(a.fingerprint(), other_region.fingerprint());
        let mut other_plan = a.clone();
        other_plan.add(plan(&[2, 0]), Region::new(vec![0, 0], vec![1, 1]));
        assert_ne!(a.fingerprint(), other_plan.fingerprint());
        assert_ne!(a.fingerprint(), RobustLogicalSolution::new().fingerprint());
    }

    #[test]
    fn display_lists_plans() {
        let mut sol = RobustLogicalSolution::new();
        sol.add(plan(&[0, 1]), Region::new(vec![0, 0], vec![1, 1]));
        let text = sol.to_string();
        assert!(text.contains("1 plans"));
        assert!(text.contains("op0->op1"));
    }
}
