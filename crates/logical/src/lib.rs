//! # rld-logical
//!
//! Robust logical plan generation (§4 of the paper).
//!
//! Given a query, a parameter space and a robustness threshold ε, the
//! algorithms in this crate produce a *robust logical solution*: a set of
//! logical plans, each associated with the parameter-space regions where it
//! is ε-robust (Definition 1), that together cover the space.
//!
//! Four generators are provided, matching the paper's experimental
//! comparison (§6.3):
//!
//! * [`exhaustive::ExhaustiveSearch`] (ES) — optimize at every grid cell;
//!   the quality baseline.
//! * [`random::RandomSearch`] (RS) — optimize at uniformly sampled cells and
//!   stop after a run of calls that discover nothing new.
//! * [`wrp::WeightedRobustPartitioning`] (WRP, Algorithm 2) — recursive
//!   weight-driven space partitioning.
//! * [`erp::EarlyTerminatedRobustPartitioning`] (ERP, Algorithm 3) — WRP plus
//!   the aging-counter early-termination rule whose probabilistic guarantees
//!   are Theorems 1 and 2.
//!
//! Supporting machinery: [`robustness::RobustnessChecker`] (Definition 1 with
//! memoized optimizer calls), [`solution::RobustLogicalSolution`], the
//! [`evaluator::CoverageEvaluator`] that measures true space coverage for the
//! experiments, and [`stats::SearchStats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod erp;
pub mod evaluator;
pub mod exhaustive;
pub mod random;
pub mod robustness;
pub mod solution;
pub mod stats;
pub mod wrp;

pub use erp::{EarlyTerminatedRobustPartitioning, ErpConfig};
pub use evaluator::CoverageEvaluator;
pub use exhaustive::ExhaustiveSearch;
pub use random::RandomSearch;
pub use robustness::RobustnessChecker;
pub use solution::{RobustLogicalSolution, SolutionEntry};
pub use stats::SearchStats;
pub use wrp::WeightedRobustPartitioning;

use rld_common::Result;

/// Common interface implemented by the four logical-solution generators, so
/// the benchmark harness can sweep over them uniformly.
pub trait LogicalPlanGenerator {
    /// Human-readable algorithm name (`"ES"`, `"RS"`, `"WRP"`, `"ERP"`).
    fn name(&self) -> &'static str;

    /// Produce a robust logical solution for the configured space, together
    /// with search statistics (optimizer calls made, plans found, ...).
    fn generate(&self) -> Result<(RobustLogicalSolution, SearchStats)>;

    /// Produce a solution using at most `max_calls` optimizer calls
    /// (used for the coverage-versus-calls experiment, Figure 11).
    fn generate_with_budget(
        &self,
        max_calls: usize,
    ) -> Result<(RobustLogicalSolution, SearchStats)>;
}
