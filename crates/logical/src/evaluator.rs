//! True parameter-space coverage evaluation.
//!
//! The paper's Figures 11 and 14 report how much of the parameter space a
//! solution actually covers. The generators themselves only *claim* regions
//! based on corner checks; the evaluator measures ground truth: for every
//! grid cell it computes the optimal plan cost (using its own rank optimizer,
//! whose calls are *not* charged to the algorithm under evaluation) and then
//! checks whether at least one plan of the solution is ε-robust there.

use crate::solution::RobustLogicalSolution;
use rld_common::{Query, Result};
use rld_paramspace::{GridPoint, ParameterSpace};
use rld_query::{CostModel, JoinOrderOptimizer, LogicalPlan, Optimizer};
use std::collections::HashMap;

/// Ground-truth coverage evaluator for robust logical solutions.
pub struct CoverageEvaluator {
    space: ParameterSpace,
    cost_model: CostModel,
    epsilon: f64,
    optimal_costs: HashMap<GridPoint, f64>,
}

impl CoverageEvaluator {
    /// Build an evaluator: computes the optimal plan cost at every grid cell
    /// of the space up front (cheap with the rank optimizer).
    pub fn new(query: Query, space: ParameterSpace, epsilon: f64) -> Result<Self> {
        let optimizer = JoinOrderOptimizer::new(query.clone());
        let mut optimal_costs = HashMap::with_capacity(space.total_cells());
        for cell in space.iter_grid() {
            let stats = space.snapshot_at(&cell);
            let plan = optimizer.optimize(&stats)?;
            let cost = optimizer.plan_cost(&plan, &stats)?;
            optimal_costs.insert(cell, cost);
        }
        Ok(Self {
            space,
            cost_model: CostModel::new(query),
            epsilon,
            optimal_costs,
        })
    }

    /// The robustness threshold used.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The space being evaluated.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// Optimal plan cost at a grid cell (precomputed).
    pub fn optimal_cost_at(&self, cell: &GridPoint) -> Option<f64> {
        self.optimal_costs.get(cell).copied()
    }

    /// Whether a specific plan is ε-robust at a cell (Definition 1).
    pub fn plan_robust_at(&self, plan: &LogicalPlan, cell: &GridPoint) -> Result<bool> {
        let stats = self.space.snapshot_at(cell);
        let cost = self.cost_model.plan_cost(plan, &stats)?;
        let optimal = self
            .optimal_costs
            .get(cell)
            .copied()
            .unwrap_or(f64::INFINITY);
        Ok(cost <= (1.0 + self.epsilon) * optimal + 1e-12)
    }

    /// Fraction of grid cells where *some* plan of the solution is ε-robust —
    /// the "parameter space coverage" metric of Figures 11 and 14.
    pub fn true_coverage(&self, solution: &RobustLogicalSolution) -> Result<f64> {
        if solution.is_empty() {
            return Ok(0.0);
        }
        let mut covered = 0usize;
        let total = self.space.total_cells();
        for cell in self.space.iter_grid() {
            for plan in solution.plans() {
                if self.plan_robust_at(plan, &cell)? {
                    covered += 1;
                    break;
                }
            }
        }
        Ok(covered as f64 / total as f64)
    }

    /// Fraction of cells where the *assigned* plan (the one the online
    /// classifier would pick via [`RobustLogicalSolution::plan_for`]) is
    /// ε-robust. Stricter than [`CoverageEvaluator::true_coverage`]; this is
    /// what matters at runtime.
    pub fn routed_coverage(&self, solution: &RobustLogicalSolution) -> Result<f64> {
        if solution.is_empty() {
            return Ok(0.0);
        }
        let mut covered = 0usize;
        let total = self.space.total_cells();
        for cell in self.space.iter_grid() {
            if let Some(plan) = solution.plan_for(&cell) {
                if self.plan_robust_at(plan, &cell)? {
                    covered += 1;
                }
            }
        }
        Ok(covered as f64 / total as f64)
    }

    /// Number of *distinct optimal* plans over the whole grid — the ground
    /// truth against which the generators' plan counts can be compared.
    pub fn distinct_optimal_plans(&self, query: &Query) -> Result<usize> {
        let optimizer = JoinOrderOptimizer::new(query.clone());
        let mut set = std::collections::HashSet::new();
        for cell in self.space.iter_grid() {
            let stats = self.space.snapshot_at(&cell);
            set.insert(optimizer.optimize(&stats)?);
        }
        Ok(set.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::RobustLogicalSolution;
    use rld_common::UncertaintyLevel;
    use rld_paramspace::Region;

    fn setup() -> (Query, ParameterSpace) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), 7).unwrap();
        (q, space)
    }

    #[test]
    fn empty_solution_has_zero_coverage() {
        let (q, space) = setup();
        let ev = CoverageEvaluator::new(q, space, 0.2).unwrap();
        assert_eq!(
            ev.true_coverage(&RobustLogicalSolution::new()).unwrap(),
            0.0
        );
        assert_eq!(
            ev.routed_coverage(&RobustLogicalSolution::new()).unwrap(),
            0.0
        );
    }

    #[test]
    fn optimal_plan_at_every_cell_gives_full_coverage() {
        let (q, space) = setup();
        let ev = CoverageEvaluator::new(q.clone(), space.clone(), 0.1).unwrap();
        // Build a solution holding the optimal plan of every cell.
        let optimizer = JoinOrderOptimizer::new(q);
        let mut sol = RobustLogicalSolution::new();
        for cell in space.iter_grid() {
            let stats = space.snapshot_at(&cell);
            let plan = optimizer.optimize(&stats).unwrap();
            sol.add(
                plan,
                Region::new(cell.indices.clone(), cell.indices.clone()),
            );
        }
        let cov = ev.true_coverage(&sol).unwrap();
        assert!((cov - 1.0).abs() < 1e-9, "cov={cov}");
        let routed = ev.routed_coverage(&sol).unwrap();
        assert!((routed - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_plan_with_large_epsilon_covers_everything() {
        let (q, space) = setup();
        let ev = CoverageEvaluator::new(q.clone(), space.clone(), 100.0).unwrap();
        let optimizer = JoinOrderOptimizer::new(q);
        let stats = space.snapshot_at(&space.centre());
        let plan = optimizer.optimize(&stats).unwrap();
        let mut sol = RobustLogicalSolution::new();
        sol.add(plan, Region::full(&space));
        assert!((ev.true_coverage(&sol).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn routed_coverage_never_exceeds_true_coverage() {
        let (q, space) = setup();
        let ev = CoverageEvaluator::new(q.clone(), space.clone(), 0.15).unwrap();
        let optimizer = JoinOrderOptimizer::new(q);
        let mut sol = RobustLogicalSolution::new();
        // Two plans: optima at the extreme corners, each claiming the full space.
        for corner in [space.pnt_lo(), space.pnt_hi()] {
            let plan = optimizer.optimize(&space.snapshot_at(&corner)).unwrap();
            sol.add(plan, Region::full(&space));
        }
        let t = ev.true_coverage(&sol).unwrap();
        let r = ev.routed_coverage(&sol).unwrap();
        assert!(r <= t + 1e-12);
        assert!(t > 0.0);
    }

    #[test]
    fn distinct_optimal_plans_at_least_one() {
        let (q, space) = setup();
        let ev = CoverageEvaluator::new(q.clone(), space, 0.1).unwrap();
        let n = ev.distinct_optimal_plans(&q).unwrap();
        assert!(n >= 1);
    }

    #[test]
    fn optimal_cost_lookup() {
        let (q, space) = setup();
        let ev = CoverageEvaluator::new(q, space.clone(), 0.1).unwrap();
        assert!(ev.optimal_cost_at(&space.centre()).unwrap() > 0.0);
        assert!(ev
            .optimal_cost_at(&GridPoint::new(vec![999, 999]))
            .is_none());
    }
}
