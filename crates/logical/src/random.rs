//! Random sampling (RS) baseline for robust logical plan generation.
//!
//! RS repeatedly optimizes at uniformly random grid cells and stops when a
//! configurable number of consecutive calls fails to discover a distinct
//! robust plan (§6.2: "RS stops making optimizer calls if it fails to find a
//! distinct robust logical plan after a given number of optimizer calls").
//! This corresponds to ERP with *equal* weights on all points — the ablation
//! the paper uses to show that the weight function matters.

use crate::solution::RobustLogicalSolution;
use crate::stats::SearchStats;
use crate::LogicalPlanGenerator;
use rand::RngExt;
use rld_common::rng::rng_from_seed;
use rld_common::Result;
use rld_paramspace::{GridPoint, ParameterSpace, Region};
use rld_query::Optimizer;
use std::time::Instant;

/// Uniform random sampling of parameter-space cells.
pub struct RandomSearch<'a, O: Optimizer> {
    optimizer: &'a O,
    space: &'a ParameterSpace,
    /// Stop after this many consecutive samples that yield no new plan.
    max_misses: usize,
    seed: u64,
}

impl<'a, O: Optimizer> RandomSearch<'a, O> {
    /// Default number of consecutive unproductive samples before stopping.
    pub const DEFAULT_MAX_MISSES: usize = 10;

    /// Create a random searcher with the default miss limit.
    pub fn new(optimizer: &'a O, space: &'a ParameterSpace, seed: u64) -> Self {
        Self::with_max_misses(optimizer, space, seed, Self::DEFAULT_MAX_MISSES)
    }

    /// Create a random searcher with an explicit miss limit.
    pub fn with_max_misses(
        optimizer: &'a O,
        space: &'a ParameterSpace,
        seed: u64,
        max_misses: usize,
    ) -> Self {
        assert!(max_misses > 0, "max_misses must be positive");
        Self {
            optimizer,
            space,
            max_misses,
            seed,
        }
    }

    fn random_cell(&self, rng: &mut rld_common::rng::SeededRng) -> GridPoint {
        GridPoint::new(
            self.space
                .dimensions()
                .iter()
                .map(|d| rng.random_range(0..d.steps))
                .collect(),
        )
    }

    fn run(&self, max_calls: Option<usize>) -> Result<(RobustLogicalSolution, SearchStats)> {
        // rld-allow(D2): compile-time solver wall-ms, reported in SolveStats only — never a tuple result
        let start = Instant::now();
        let calls_before = self.optimizer.call_count();
        let mut rng = rng_from_seed(self.seed);
        let mut solution = RobustLogicalSolution::new();
        let mut misses = 0usize;
        let mut examined = 0usize;
        let mut terminated_early = false;
        // Never exceed one call per cell on average times a small factor; the
        // miss counter is the primary stop condition.
        let hard_cap = max_calls.unwrap_or(self.space.total_cells() * 4);
        while misses < self.max_misses {
            if self.optimizer.call_count() - calls_before >= hard_cap {
                terminated_early = max_calls.is_some();
                break;
            }
            let cell = self.random_cell(&mut rng);
            let stats = self.space.snapshot_at(&cell);
            let plan = self.optimizer.optimize(&stats)?;
            examined += 1;
            let is_new = solution.add(plan, Region::new(cell.indices.clone(), cell.indices));
            if is_new {
                misses = 0;
            } else {
                misses += 1;
            }
        }
        let stats = SearchStats {
            optimizer_calls: self.optimizer.call_count() - calls_before,
            distinct_plans: solution.len(),
            regions_examined: examined,
            partitions: 0,
            terminated_early,
            elapsed_micros: start.elapsed().as_micros() as u64,
        };
        Ok((solution, stats))
    }
}

impl<'a, O: Optimizer> LogicalPlanGenerator for RandomSearch<'a, O> {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn generate(&self) -> Result<(RobustLogicalSolution, SearchStats)> {
        self.run(None)
    }

    fn generate_with_budget(
        &self,
        max_calls: usize,
    ) -> Result<(RobustLogicalSolution, SearchStats)> {
        self.run(Some(max_calls))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{Query, UncertaintyLevel};
    use rld_query::JoinOrderOptimizer;

    fn setup(steps: usize) -> (Query, ParameterSpace) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), steps).unwrap();
        (q, space)
    }

    #[test]
    fn rs_terminates_and_finds_plans() {
        let (q, space) = setup(9);
        let opt = JoinOrderOptimizer::new(q);
        let rs = RandomSearch::new(&opt, &space, 42);
        let (solution, stats) = rs.generate().unwrap();
        assert!(stats.optimizer_calls > 0);
        assert!(!solution.is_empty());
        assert_eq!(stats.distinct_plans, solution.len());
        assert_eq!(rs.name(), "RS");
    }

    #[test]
    fn rs_is_deterministic_given_seed() {
        let (q, space) = setup(9);
        let opt_a = JoinOrderOptimizer::new(q.clone());
        let opt_b = JoinOrderOptimizer::new(q);
        let a = RandomSearch::new(&opt_a, &space, 7).generate().unwrap();
        let b = RandomSearch::new(&opt_b, &space, 7).generate().unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.optimizer_calls, b.1.optimizer_calls);
    }

    #[test]
    fn rs_budget_is_respected() {
        let (q, space) = setup(9);
        let opt = JoinOrderOptimizer::new(q);
        let rs = RandomSearch::with_max_misses(&opt, &space, 3, 1000);
        let (_, stats) = rs.generate_with_budget(5).unwrap();
        assert!(stats.optimizer_calls <= 5);
    }

    #[test]
    fn larger_miss_limit_finds_at_least_as_many_plans() {
        let (q, space) = setup(9);
        let opt_small = JoinOrderOptimizer::new(q.clone());
        let opt_large = JoinOrderOptimizer::new(q);
        let small = RandomSearch::with_max_misses(&opt_small, &space, 11, 2)
            .generate()
            .unwrap();
        let large = RandomSearch::with_max_misses(&opt_large, &space, 11, 50)
            .generate()
            .unwrap();
        assert!(large.0.len() >= small.0.len());
        assert!(large.1.optimizer_calls >= small.1.optimizer_calls);
    }

    #[test]
    #[should_panic(expected = "max_misses must be positive")]
    fn zero_miss_limit_panics() {
        let (q, space) = setup(5);
        let opt = JoinOrderOptimizer::new(q);
        let _ = RandomSearch::with_max_misses(&opt, &space, 1, 0);
    }
}
