//! Search statistics reported by the logical-solution generators.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Statistics about one logical-solution search run. These are the quantities
/// plotted in Figures 10–12 of the paper (optimizer calls) and recorded in
/// EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of (uncached) black-box optimizer calls made.
    pub optimizer_calls: usize,
    /// Number of distinct robust logical plans in the produced solution.
    pub distinct_plans: usize,
    /// Number of regions examined (partitioning algorithms) or points sampled.
    pub regions_examined: usize,
    /// Number of partitioning steps performed (0 for ES / RS).
    pub partitions: usize,
    /// Whether the search terminated early via the aging counter (ERP) or a
    /// call budget rather than by exhausting its work list.
    pub terminated_early: bool,
    /// Wall-clock duration of the search in microseconds.
    pub elapsed_micros: u64,
}

impl SearchStats {
    /// Elapsed time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_micros as f64 / 1000.0
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} plans={} regions={} partitions={} early={} elapsed={:.2}ms",
            self.optimizer_calls,
            self.distinct_plans,
            self.regions_examined,
            self.partitions,
            self.terminated_early,
            self.elapsed_ms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = SearchStats::default();
        assert_eq!(s.optimizer_calls, 0);
        assert_eq!(s.distinct_plans, 0);
        assert!(!s.terminated_early);
    }

    #[test]
    fn elapsed_conversion_and_display() {
        let s = SearchStats {
            optimizer_calls: 12,
            distinct_plans: 3,
            regions_examined: 7,
            partitions: 2,
            terminated_early: true,
            elapsed_micros: 2500,
        };
        assert!((s.elapsed_ms() - 2.5).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("calls=12"));
        assert!(text.contains("plans=3"));
        assert!(text.contains("early=true"));
    }
}
