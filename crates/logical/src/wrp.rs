//! Weight-driven Robust Partitioning (WRP, Algorithm 2).
//!
//! WRP recursively partitions the parameter space: for each sub-space it asks
//! the black-box optimizer for the optimal plans at the corners, accepts the
//! sub-space when the bottom-corner plan is ε-robust across it (Definition 1
//! via the corner bound), and otherwise splits the sub-space at the highest-
//! weight interior point (the §4.2 weight function) and recurses. Unlike
//! ERP it has no early-termination rule, so it keeps refining until every
//! sub-space is robust — the behaviour whose cost explosion motivates ERP.
//!
//! ## Parallel search
//!
//! The sub-spaces sitting in the work queue at any moment are independent:
//! probing one never reads another's result (the solution is only *written*,
//! and the shared optimum cache is a pure memo of a deterministic function).
//! The engine therefore processes the queue one **frontier** (BFS level) at a
//! time: all regions of the frontier are evaluated concurrently on a
//! [`std::thread::scope`] worker pool, then the results are **merged
//! sequentially in frontier order** — the exact order the sequential FIFO
//! queue would have processed them. Discovery bookkeeping (ERP's aging
//! counter), termination checks and solution insertion all happen at merge
//! time, so the produced solution is bit-identical to the sequential run of
//! the same configuration; parallelism only changes wall-clock time (and may
//! make extra *speculative* optimizer calls for frontier regions that a
//! mid-frontier termination would have skipped). Explicit optimizer-call
//! budgets force the sequential path so the call accounting that budget
//! semantics depend on stays exact.

use crate::robustness::RobustnessChecker;
use crate::solution::RobustLogicalSolution;
use crate::stats::SearchStats;
use crate::LogicalPlanGenerator;
use rld_common::Result;
use rld_paramspace::{DistanceMetric, GridPoint, ParameterSpace, Region, WeightMap};
use rld_query::{LogicalPlan, Optimizer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Termination rule for the shared partitioning engine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AgingTermination {
    /// Stop once this many consecutive optimizer probes yield no new plan.
    pub threshold: usize,
}

/// Outcome flags shared by WRP / ERP.
pub(crate) struct PartitionOutcome {
    pub solution: RobustLogicalSolution,
    pub stats: SearchStats,
}

/// Everything the merge step needs to know about one probed region. Produced
/// (possibly concurrently) by [`evaluate_region`]; consumed strictly in
/// frontier order.
struct RegionEval {
    robust: bool,
    opt_lo: LogicalPlan,
    opt_hi: LogicalPlan,
    /// Child sub-regions to enqueue (empty when robust or single-cell).
    children: Vec<Region>,
    /// Whether a partitioning step was performed.
    partitioned: bool,
}

/// Probe one region: corner optima, the corner-bound robustness verdict, and
/// — when not robust — the weight-driven split. Pure with respect to the
/// shared solution: all solution updates are deferred to the merge.
fn evaluate_region<O: Optimizer>(
    checker: &RobustnessChecker<'_, O>,
    metric: DistanceMetric,
    region: &Region,
) -> Result<RegionEval> {
    let space = checker.space();
    let opt_lo = checker.optimal_plan_at(&region.pnt_lo())?;
    let opt_hi = checker.optimal_plan_at(&region.pnt_hi())?;
    let robust = checker.is_robust_in_region(&opt_lo, region)?;
    let mut children = Vec::new();
    let mut partitioned = false;
    if !robust && !region.is_single_cell() {
        partitioned = true;
        let cost_lo = |g: &GridPoint| checker.plan_cost_at(&opt_lo, g).unwrap_or(f64::INFINITY);
        let cost_hi = |g: &GridPoint| checker.plan_cost_at(&opt_hi, g).unwrap_or(f64::INFINITY);
        let weights = WeightMap::assign(space, region, cost_lo, cost_hi, metric);
        let partition_point = weights
            .max_weight_interior_point(region)
            .unwrap_or_else(|| region.centre());
        let mut parts = region.split_at(&partition_point);
        if parts.len() == 1 && parts[0] == *region {
            // Degenerate partition point: fall back to bisection so
            // the search always makes progress.
            parts = region.bisect();
        }
        children = parts.into_iter().filter(|p| p != region).collect();
    }
    Ok(RegionEval {
        robust,
        opt_lo,
        opt_hi,
        children,
        partitioned,
    })
}

/// Evaluate a whole frontier, fanning the regions out over `parallelism`
/// scoped worker threads (work-stealing via an atomic index so uneven region
/// costs balance). Results come back indexed by frontier position, which is
/// the only order the merge ever reads them in.
fn evaluate_frontier<O: Optimizer + Sync>(
    checker: &RobustnessChecker<'_, O>,
    metric: DistanceMetric,
    frontier: &[Region],
    parallelism: usize,
) -> Vec<Result<RegionEval>> {
    let workers = parallelism.min(frontier.len());
    if workers <= 1 {
        return frontier
            .iter()
            .map(|r| evaluate_region(checker, metric, r))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<RegionEval>>>> =
        frontier.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= frontier.len() {
                    break;
                }
                let eval = evaluate_region(checker, metric, &frontier[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(eval);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every frontier slot evaluated")
        })
        .collect()
}

/// Shared partitioning engine used by both WRP (no aging termination) and
/// ERP (aging termination per Theorem 1). `parallelism` > 1 probes each
/// frontier on that many worker threads; the merged solution is identical to
/// the sequential one (see the module docs). A `max_calls` budget forces
/// sequential evaluation so its call accounting stays exact.
pub(crate) fn partition_search<O: Optimizer + Sync>(
    checker: &RobustnessChecker<'_, O>,
    termination: Option<AgingTermination>,
    max_calls: Option<usize>,
    metric: DistanceMetric,
    parallelism: usize,
) -> Result<PartitionOutcome> {
    // rld-allow(D2): compile-time solver wall-ms, reported in SolveStats only — never a tuple result
    let start = Instant::now();
    let space = checker.space();
    let calls_before = checker.optimizer_calls();
    let mut solution = RobustLogicalSolution::new();
    let mut frontier: Vec<Region> = vec![Region::full(space)];
    let parallelism = if max_calls.is_some() {
        1
    } else {
        parallelism.max(1)
    };

    let mut aging_counter = 0usize;
    let mut partitions = 0usize;
    let mut examined = 0usize;
    let mut terminated_early = false;

    'levels: while !frontier.is_empty() {
        // Parallel mode probes the whole frontier eagerly; sequential mode
        // stays lazy so the budget/aging checks below gate every single
        // optimizer call exactly as the original FIFO loop did.
        let mut evals: Vec<Option<Result<RegionEval>>> = if parallelism > 1 {
            evaluate_frontier(checker, metric, &frontier, parallelism)
                .into_iter()
                .map(Some)
                .collect()
        } else {
            frontier.iter().map(|_| None).collect()
        };
        let mut next_frontier = Vec::new();
        for (region, slot) in frontier.iter().zip(evals.iter_mut()) {
            if let Some(budget) = max_calls {
                if checker.optimizer_calls() - calls_before >= budget {
                    terminated_early = true;
                    break 'levels;
                }
            }
            if let Some(term) = termination {
                if aging_counter > term.threshold {
                    terminated_early = true;
                    break 'levels;
                }
            }
            examined += 1;
            let eval = match slot.take() {
                Some(eval) => eval?,
                None => evaluate_region(checker, metric, region)?,
            };

            let mut discovered = false;
            if eval.robust {
                discovered |= solution.add(eval.opt_lo.clone(), region.clone());
                if eval.opt_hi != eval.opt_lo {
                    // The top-corner optimum is within ε of opt_lo here, but it is
                    // still a distinct plan worth remembering for its own cell.
                    discovered |= solution.add(eval.opt_hi, single_cell(&region.pnt_hi()));
                }
            } else {
                // Record what we learned at the corners even when the sub-space
                // itself is not yet robust.
                discovered |= solution.add(eval.opt_lo, single_cell(&region.pnt_lo()));
                discovered |= solution.add(eval.opt_hi, single_cell(&region.pnt_hi()));
                if eval.partitioned {
                    partitions += 1;
                }
                next_frontier.extend(eval.children);
            }

            if discovered {
                aging_counter = 0;
            } else {
                aging_counter += 1;
            }
        }
        frontier = next_frontier;
    }

    let stats = SearchStats {
        optimizer_calls: checker.optimizer_calls() - calls_before,
        distinct_plans: solution.len(),
        regions_examined: examined,
        partitions,
        terminated_early,
        elapsed_micros: start.elapsed().as_micros() as u64,
    };
    Ok(PartitionOutcome { solution, stats })
}

fn single_cell(p: &GridPoint) -> Region {
    Region::new(p.indices.clone(), p.indices.clone())
}

/// Weight-driven Robust Partitioning (Algorithm 2): partition until every
/// sub-space has a robust plan, with no early termination.
pub struct WeightedRobustPartitioning<'a, O: Optimizer> {
    checker: RobustnessChecker<'a, O>,
    metric: DistanceMetric,
    parallelism: usize,
}

impl<'a, O: Optimizer> WeightedRobustPartitioning<'a, O> {
    /// Create a WRP generator for the given optimizer, space and ε.
    pub fn new(optimizer: &'a O, space: &'a ParameterSpace, epsilon: f64) -> Self {
        Self {
            checker: RobustnessChecker::new(optimizer, space, epsilon),
            metric: DistanceMetric::default(),
            parallelism: 1,
        }
    }

    /// Use a specific distance metric for the weight function.
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Probe each partitioning frontier on `parallelism` worker threads.
    /// The produced solution is identical to the sequential one; wall-clock
    /// time drops on multi-dimensional spaces. `0` and `1` mean sequential.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Access the underlying robustness checker.
    pub fn checker(&self) -> &RobustnessChecker<'a, O> {
        &self.checker
    }
}

impl<'a, O: Optimizer + Sync> LogicalPlanGenerator for WeightedRobustPartitioning<'a, O> {
    fn name(&self) -> &'static str {
        "WRP"
    }

    fn generate(&self) -> Result<(RobustLogicalSolution, SearchStats)> {
        let out = partition_search(&self.checker, None, None, self.metric, self.parallelism)?;
        Ok((out.solution, out.stats))
    }

    fn generate_with_budget(
        &self,
        max_calls: usize,
    ) -> Result<(RobustLogicalSolution, SearchStats)> {
        let out = partition_search(
            &self.checker,
            None,
            Some(max_calls),
            self.metric,
            self.parallelism,
        )?;
        Ok((out.solution, out.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::CoverageEvaluator;
    use crate::exhaustive::ExhaustiveSearch;
    use rld_common::{Query, UncertaintyLevel};
    use rld_query::JoinOrderOptimizer;

    fn setup(steps: usize, u: u32) -> (Query, ParameterSpace) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(u))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), steps).unwrap();
        (q, space)
    }

    #[test]
    fn wrp_terminates_and_covers_most_of_the_space() {
        let (q, space) = setup(9, 3);
        let opt = JoinOrderOptimizer::new(q.clone());
        let wrp = WeightedRobustPartitioning::new(&opt, &space, 0.2);
        let (solution, stats) = wrp.generate().unwrap();
        assert!(!solution.is_empty());
        assert!(stats.optimizer_calls > 0);
        let ev = CoverageEvaluator::new(q.clone(), space.clone(), 0.2).unwrap();
        let cov = ev.true_coverage(&solution).unwrap();
        assert!(cov > 0.8, "true coverage too low: {cov}");
        assert_eq!(wrp.name(), "WRP");
    }

    #[test]
    fn wrp_uses_fewer_calls_than_exhaustive() {
        let (q, space) = setup(9, 3);
        let opt_wrp = JoinOrderOptimizer::new(q.clone());
        let opt_es = JoinOrderOptimizer::new(q);
        let wrp = WeightedRobustPartitioning::new(&opt_wrp, &space, 0.2);
        let es = ExhaustiveSearch::new(&opt_es, &space);
        let (_, wrp_stats) = wrp.generate().unwrap();
        let (_, es_stats) = es.generate().unwrap();
        assert!(
            wrp_stats.optimizer_calls < es_stats.optimizer_calls,
            "WRP calls {} >= ES calls {}",
            wrp_stats.optimizer_calls,
            es_stats.optimizer_calls
        );
    }

    #[test]
    fn looser_epsilon_needs_fewer_calls() {
        let (q, space) = setup(9, 3);
        let opt_tight = JoinOrderOptimizer::new(q.clone());
        let opt_loose = JoinOrderOptimizer::new(q);
        let tight = WeightedRobustPartitioning::new(&opt_tight, &space, 0.05);
        let loose = WeightedRobustPartitioning::new(&opt_loose, &space, 0.5);
        let (_, tight_stats) = tight.generate().unwrap();
        let (_, loose_stats) = loose.generate().unwrap();
        assert!(loose_stats.optimizer_calls <= tight_stats.optimizer_calls);
    }

    #[test]
    fn budget_caps_calls() {
        let (q, space) = setup(9, 3);
        let opt = JoinOrderOptimizer::new(q);
        let wrp = WeightedRobustPartitioning::new(&opt, &space, 0.05);
        let (_, stats) = wrp.generate_with_budget(4).unwrap();
        assert!(stats.optimizer_calls <= 5);
    }

    #[test]
    fn parallel_solution_is_identical_to_sequential() {
        for (steps, u, epsilon) in [(9, 3, 0.2), (9, 3, 0.05), (7, 2, 0.1)] {
            let (q, space) = setup(steps, u);
            let opt_seq = JoinOrderOptimizer::new(q.clone());
            let opt_par = JoinOrderOptimizer::new(q.clone());
            let seq = WeightedRobustPartitioning::new(&opt_seq, &space, epsilon);
            let par =
                WeightedRobustPartitioning::new(&opt_par, &space, epsilon).with_parallelism(4);
            let (sol_seq, stats_seq) = seq.generate().unwrap();
            let (sol_par, stats_par) = par.generate().unwrap();
            assert_eq!(
                sol_seq, sol_par,
                "parallel WRP diverged at steps={steps} u={u} eps={epsilon}"
            );
            assert_eq!(stats_seq.regions_examined, stats_par.regions_examined);
            assert_eq!(stats_seq.partitions, stats_par.partitions);
        }
    }

    #[test]
    fn budgeted_generation_is_sequential_even_with_parallelism() {
        let (q, space) = setup(9, 3);
        let opt = JoinOrderOptimizer::new(q);
        let wrp = WeightedRobustPartitioning::new(&opt, &space, 0.05).with_parallelism(8);
        let (_, stats) = wrp.generate_with_budget(4).unwrap();
        // Exact budget semantics are preserved: no speculative overshoot.
        assert!(stats.optimizer_calls <= 5);
    }
}
