//! Weight-driven Robust Partitioning (WRP, Algorithm 2).
//!
//! WRP recursively partitions the parameter space: for each sub-space it asks
//! the black-box optimizer for the optimal plans at the corners, accepts the
//! sub-space when the bottom-corner plan is ε-robust across it (Definition 1
//! via the corner bound), and otherwise splits the sub-space at the highest-
//! weight interior point (the §4.2 weight function) and recurses. Unlike
//! ERP it has no early-termination rule, so it keeps refining until every
//! sub-space is robust — the behaviour whose cost explosion motivates ERP.

use crate::robustness::RobustnessChecker;
use crate::solution::RobustLogicalSolution;
use crate::stats::SearchStats;
use crate::LogicalPlanGenerator;
use rld_common::Result;
use rld_paramspace::{DistanceMetric, GridPoint, ParameterSpace, Region, WeightMap};
use rld_query::Optimizer;
use std::collections::VecDeque;
use std::time::Instant;

/// Termination rule for the shared partitioning engine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AgingTermination {
    /// Stop once this many consecutive optimizer probes yield no new plan.
    pub threshold: usize,
}

/// Outcome flags shared by WRP / ERP.
pub(crate) struct PartitionOutcome {
    pub solution: RobustLogicalSolution,
    pub stats: SearchStats,
}

/// Shared partitioning engine used by both WRP (no aging termination) and
/// ERP (aging termination per Theorem 1).
pub(crate) fn partition_search<O: Optimizer>(
    checker: &RobustnessChecker<'_, O>,
    termination: Option<AgingTermination>,
    max_calls: Option<usize>,
    metric: DistanceMetric,
) -> Result<PartitionOutcome> {
    let start = Instant::now();
    let space = checker.space();
    let calls_before = checker.optimizer_calls();
    let mut solution = RobustLogicalSolution::new();
    let mut queue: VecDeque<Region> = VecDeque::new();
    queue.push_back(Region::full(space));

    let mut aging_counter = 0usize;
    let mut partitions = 0usize;
    let mut examined = 0usize;
    let mut terminated_early = false;

    while let Some(region) = queue.pop_front() {
        if let Some(budget) = max_calls {
            if checker.optimizer_calls() - calls_before >= budget {
                terminated_early = true;
                break;
            }
        }
        if let Some(term) = termination {
            if aging_counter > term.threshold {
                terminated_early = true;
                break;
            }
        }
        examined += 1;

        let pnt_lo = region.pnt_lo();
        let pnt_hi = region.pnt_hi();
        let opt_lo = checker.optimal_plan_at(&pnt_lo)?;
        let opt_hi = checker.optimal_plan_at(&pnt_hi)?;

        let mut discovered = false;
        let robust = checker.is_robust_in_region(&opt_lo, &region)?;
        if robust {
            discovered |= solution.add(opt_lo.clone(), region.clone());
            if opt_hi != opt_lo {
                // The top-corner optimum is within ε of opt_lo here, but it is
                // still a distinct plan worth remembering for its own cell.
                discovered |= solution.add(opt_hi, single_cell(&pnt_hi));
            }
        } else {
            // Record what we learned at the corners even when the sub-space
            // itself is not yet robust.
            discovered |= solution.add(opt_lo.clone(), single_cell(&pnt_lo));
            discovered |= solution.add(opt_hi.clone(), single_cell(&pnt_hi));

            if !region.is_single_cell() {
                partitions += 1;
                let cost_lo =
                    |g: &GridPoint| checker.plan_cost_at(&opt_lo, g).unwrap_or(f64::INFINITY);
                let cost_hi =
                    |g: &GridPoint| checker.plan_cost_at(&opt_hi, g).unwrap_or(f64::INFINITY);
                let weights = WeightMap::assign(space, &region, cost_lo, cost_hi, metric);
                let partition_point = weights
                    .max_weight_interior_point(&region)
                    .unwrap_or_else(|| region.centre());
                let mut parts = region.split_at(&partition_point);
                if parts.len() == 1 && parts[0] == region {
                    // Degenerate partition point: fall back to bisection so
                    // the search always makes progress.
                    parts = region.bisect();
                }
                for part in parts {
                    if part != region {
                        queue.push_back(part);
                    }
                }
            }
        }

        if discovered {
            aging_counter = 0;
        } else {
            aging_counter += 1;
        }
    }

    let stats = SearchStats {
        optimizer_calls: checker.optimizer_calls() - calls_before,
        distinct_plans: solution.len(),
        regions_examined: examined,
        partitions,
        terminated_early,
        elapsed_micros: start.elapsed().as_micros() as u64,
    };
    Ok(PartitionOutcome { solution, stats })
}

fn single_cell(p: &GridPoint) -> Region {
    Region::new(p.indices.clone(), p.indices.clone())
}

/// Weight-driven Robust Partitioning (Algorithm 2): partition until every
/// sub-space has a robust plan, with no early termination.
pub struct WeightedRobustPartitioning<'a, O: Optimizer> {
    checker: RobustnessChecker<'a, O>,
    metric: DistanceMetric,
}

impl<'a, O: Optimizer> WeightedRobustPartitioning<'a, O> {
    /// Create a WRP generator for the given optimizer, space and ε.
    pub fn new(optimizer: &'a O, space: &'a ParameterSpace, epsilon: f64) -> Self {
        Self {
            checker: RobustnessChecker::new(optimizer, space, epsilon),
            metric: DistanceMetric::default(),
        }
    }

    /// Use a specific distance metric for the weight function.
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Access the underlying robustness checker.
    pub fn checker(&self) -> &RobustnessChecker<'a, O> {
        &self.checker
    }
}

impl<'a, O: Optimizer> LogicalPlanGenerator for WeightedRobustPartitioning<'a, O> {
    fn name(&self) -> &'static str {
        "WRP"
    }

    fn generate(&self) -> Result<(RobustLogicalSolution, SearchStats)> {
        let out = partition_search(&self.checker, None, None, self.metric)?;
        Ok((out.solution, out.stats))
    }

    fn generate_with_budget(
        &self,
        max_calls: usize,
    ) -> Result<(RobustLogicalSolution, SearchStats)> {
        let out = partition_search(&self.checker, None, Some(max_calls), self.metric)?;
        Ok((out.solution, out.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::CoverageEvaluator;
    use crate::exhaustive::ExhaustiveSearch;
    use rld_common::{Query, UncertaintyLevel};
    use rld_query::JoinOrderOptimizer;

    fn setup(steps: usize, u: u32) -> (Query, ParameterSpace) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(u))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), steps).unwrap();
        (q, space)
    }

    #[test]
    fn wrp_terminates_and_covers_most_of_the_space() {
        let (q, space) = setup(9, 3);
        let opt = JoinOrderOptimizer::new(q.clone());
        let wrp = WeightedRobustPartitioning::new(&opt, &space, 0.2);
        let (solution, stats) = wrp.generate().unwrap();
        assert!(!solution.is_empty());
        assert!(stats.optimizer_calls > 0);
        let ev = CoverageEvaluator::new(q.clone(), space.clone(), 0.2).unwrap();
        let cov = ev.true_coverage(&solution).unwrap();
        assert!(cov > 0.8, "true coverage too low: {cov}");
        assert_eq!(wrp.name(), "WRP");
    }

    #[test]
    fn wrp_uses_fewer_calls_than_exhaustive() {
        let (q, space) = setup(9, 3);
        let opt_wrp = JoinOrderOptimizer::new(q.clone());
        let opt_es = JoinOrderOptimizer::new(q);
        let wrp = WeightedRobustPartitioning::new(&opt_wrp, &space, 0.2);
        let es = ExhaustiveSearch::new(&opt_es, &space);
        let (_, wrp_stats) = wrp.generate().unwrap();
        let (_, es_stats) = es.generate().unwrap();
        assert!(
            wrp_stats.optimizer_calls < es_stats.optimizer_calls,
            "WRP calls {} >= ES calls {}",
            wrp_stats.optimizer_calls,
            es_stats.optimizer_calls
        );
    }

    #[test]
    fn looser_epsilon_needs_fewer_calls() {
        let (q, space) = setup(9, 3);
        let opt_tight = JoinOrderOptimizer::new(q.clone());
        let opt_loose = JoinOrderOptimizer::new(q);
        let tight = WeightedRobustPartitioning::new(&opt_tight, &space, 0.05);
        let loose = WeightedRobustPartitioning::new(&opt_loose, &space, 0.5);
        let (_, tight_stats) = tight.generate().unwrap();
        let (_, loose_stats) = loose.generate().unwrap();
        assert!(loose_stats.optimizer_calls <= tight_stats.optimizer_calls);
    }

    #[test]
    fn budget_caps_calls() {
        let (q, space) = setup(9, 3);
        let opt = JoinOrderOptimizer::new(q);
        let wrp = WeightedRobustPartitioning::new(&opt, &space, 0.05);
        let (_, stats) = wrp.generate_with_budget(4).unwrap();
        assert!(stats.optimizer_calls <= 5);
    }
}
