//! Exhaustive search (ES) baseline for robust logical plan generation.
//!
//! ES makes one optimizer call per grid cell of the discretized parameter
//! space (the 8×8 example of Figure 6(b)) and records the optimal plan of
//! every cell. It finds every robust plan and achieves full coverage, but its
//! cost grows as `O(n^d)` with the dimensionality — exactly the blow-up that
//! ERP avoids (Figure 12).

use crate::solution::RobustLogicalSolution;
use crate::stats::SearchStats;
use crate::LogicalPlanGenerator;
use rld_common::Result;
use rld_paramspace::{ParameterSpace, Region};
use rld_query::Optimizer;
use std::time::Instant;

/// Exhaustive grid search over the parameter space.
pub struct ExhaustiveSearch<'a, O: Optimizer> {
    optimizer: &'a O,
    space: &'a ParameterSpace,
}

impl<'a, O: Optimizer> ExhaustiveSearch<'a, O> {
    /// Create an exhaustive searcher.
    pub fn new(optimizer: &'a O, space: &'a ParameterSpace) -> Self {
        Self { optimizer, space }
    }

    fn run(&self, max_calls: Option<usize>) -> Result<(RobustLogicalSolution, SearchStats)> {
        // rld-allow(D2): compile-time solver wall-ms, reported in SolveStats only — never a tuple result
        let start = Instant::now();
        let calls_before = self.optimizer.call_count();
        let mut solution = RobustLogicalSolution::new();
        let mut examined = 0usize;
        let mut truncated = false;
        for cell in self.space.iter_grid() {
            if let Some(budget) = max_calls {
                if self.optimizer.call_count() - calls_before >= budget {
                    truncated = true;
                    break;
                }
            }
            let stats = self.space.snapshot_at(&cell);
            let plan = self.optimizer.optimize(&stats)?;
            solution.add(plan, Region::new(cell.indices.clone(), cell.indices));
            examined += 1;
        }
        let stats = SearchStats {
            optimizer_calls: self.optimizer.call_count() - calls_before,
            distinct_plans: solution.len(),
            regions_examined: examined,
            partitions: 0,
            terminated_early: truncated,
            elapsed_micros: start.elapsed().as_micros() as u64,
        };
        Ok((solution, stats))
    }
}

impl<'a, O: Optimizer> LogicalPlanGenerator for ExhaustiveSearch<'a, O> {
    fn name(&self) -> &'static str {
        "ES"
    }

    fn generate(&self) -> Result<(RobustLogicalSolution, SearchStats)> {
        self.run(None)
    }

    fn generate_with_budget(
        &self,
        max_calls: usize,
    ) -> Result<(RobustLogicalSolution, SearchStats)> {
        self.run(Some(max_calls))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_common::{Query, UncertaintyLevel};
    use rld_paramspace::ParameterSpace;
    use rld_query::JoinOrderOptimizer;

    fn setup(steps: usize) -> (Query, ParameterSpace) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(3))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), steps).unwrap();
        (q, space)
    }

    #[test]
    fn es_makes_one_call_per_cell() {
        let (q, space) = setup(7);
        let opt = JoinOrderOptimizer::new(q);
        let es = ExhaustiveSearch::new(&opt, &space);
        let (solution, stats) = es.generate().unwrap();
        assert_eq!(stats.optimizer_calls, space.total_cells());
        assert_eq!(stats.regions_examined, space.total_cells());
        assert!(!stats.terminated_early);
        assert!(!solution.is_empty());
        // Full claimed coverage: every cell belongs to some entry.
        assert!((solution.claimed_coverage(&space) - 1.0).abs() < 1e-9);
        assert_eq!(es.name(), "ES");
    }

    #[test]
    fn es_budget_limits_calls() {
        let (q, space) = setup(9);
        let opt = JoinOrderOptimizer::new(q);
        let es = ExhaustiveSearch::new(&opt, &space);
        let (solution, stats) = es.generate_with_budget(10).unwrap();
        assert_eq!(stats.optimizer_calls, 10);
        assert!(stats.terminated_early);
        assert!(solution.claimed_coverage(&space) < 1.0);
    }

    #[test]
    fn es_plan_count_equals_distinct_optimal_plans() {
        let (q, space) = setup(6);
        let opt = JoinOrderOptimizer::new(q.clone());
        let es = ExhaustiveSearch::new(&opt, &space);
        let (solution, _) = es.generate().unwrap();
        let ev = crate::evaluator::CoverageEvaluator::new(q.clone(), space, 0.0).unwrap();
        assert_eq!(solution.len(), ev.distinct_optimal_plans(&q).unwrap());
    }
}
