//! Cluster resource descriptions.
//!
//! The paper assumes a shared-nothing homogeneous cluster (§2.1); each node
//! `n_i` has a resource limit `r_i` expressed in the same cost units per
//! second as the cost model's operator loads.

use rld_common::{NodeId, Result, RldError};
use serde::{Deserialize, Serialize};

/// A cluster of compute nodes with per-node capacity limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    capacities: Vec<f64>,
}

impl Cluster {
    /// Create a cluster from explicit per-node capacities.
    pub fn new(capacities: Vec<f64>) -> Result<Self> {
        if capacities.is_empty() {
            return Err(RldError::InvalidArgument(
                "a cluster needs at least one node".into(),
            ));
        }
        if capacities.iter().any(|c| !(c.is_finite() && *c > 0.0)) {
            return Err(RldError::InvalidArgument(
                "node capacities must be positive and finite".into(),
            ));
        }
        Ok(Self { capacities })
    }

    /// Create a homogeneous cluster of `n` nodes with the given capacity each
    /// (the configuration the paper evaluates).
    pub fn homogeneous(n: usize, capacity: f64) -> Result<Self> {
        Self::new(vec![capacity; n])
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of a node.
    pub fn capacity(&self, node: NodeId) -> f64 {
        self.capacities[node.index()]
    }

    /// All capacities in node order.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Total capacity of the cluster.
    pub fn total_capacity(&self) -> f64 {
        self.capacities.iter().sum()
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.capacities.len()).map(NodeId::new).collect()
    }

    /// Whether every node has the same capacity.
    pub fn is_homogeneous(&self) -> bool {
        self.capacities
            .windows(2)
            .all(|w| (w[0] - w[1]).abs() < 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster() {
        let c = Cluster::homogeneous(4, 100.0).unwrap();
        assert_eq!(c.num_nodes(), 4);
        assert!(c.is_homogeneous());
        assert_eq!(c.total_capacity(), 400.0);
        assert_eq!(c.capacity(NodeId::new(2)), 100.0);
        assert_eq!(c.node_ids().len(), 4);
    }

    #[test]
    fn heterogeneous_cluster() {
        let c = Cluster::new(vec![100.0, 50.0]).unwrap();
        assert!(!c.is_homogeneous());
        assert_eq!(c.capacity(NodeId::new(1)), 50.0);
    }

    #[test]
    fn invalid_clusters_rejected() {
        assert!(Cluster::new(vec![]).is_err());
        assert!(Cluster::new(vec![0.0]).is_err());
        assert!(Cluster::new(vec![-5.0, 10.0]).is_err());
        assert!(Cluster::new(vec![f64::NAN]).is_err());
        assert!(Cluster::homogeneous(0, 10.0).is_err());
    }
}
