//! DYN — the dynamic load distribution baseline (Borealis-style, Xing et al.
//! ICDE'05).
//!
//! DYN starts from a placement balanced for the initial statistics and then
//! *reacts* to load imbalance at runtime: whenever a node's load exceeds its
//! capacity (times a trigger threshold), the controller moves operators off
//! the overloaded node onto the least-loaded node that can absorb them. Each
//! move is an operator migration whose cost — suspension of the operator plus
//! transfer of its state — is charged by the runtime simulator; those
//! migration overheads are exactly what the paper's Figures 15–16 show
//! hurting DYN relative to RLD.

use crate::cluster::Cluster;
use crate::llf::{llf_assign, node_loads};
use crate::plan::PhysicalPlan;
use rld_common::{NodeId, OperatorId, Query, Result, RldError, StatsSnapshot};
use rld_query::{CostModel, JoinOrderOptimizer, LogicalPlan, Optimizer};
use serde::{Deserialize, Serialize};

/// One operator migration decided by the DYN controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationDecision {
    /// The operator to move.
    pub operator: OperatorId,
    /// The node it currently runs on.
    pub from: NodeId,
    /// The node it should move to.
    pub to: NodeId,
    /// Size of the operator state that has to be transferred, in bytes.
    pub state_bytes: u64,
}

/// Configuration of the DYN controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynConfig {
    /// A node is considered overloaded when its load exceeds
    /// `capacity × overload_threshold`.
    pub overload_threshold: f64,
    /// Maximum number of migrations per rebalancing round.
    pub max_moves_per_round: usize,
}

impl Default for DynConfig {
    fn default() -> Self {
        Self {
            overload_threshold: 0.9,
            max_moves_per_round: 3,
        }
    }
}

/// The DYN baseline planner / runtime controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynPlanner {
    config: DynConfig,
}

impl DynPlanner {
    /// Create a DYN planner with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a DYN planner with an explicit configuration.
    pub fn with_config(config: DynConfig) -> Self {
        Self { config }
    }

    /// The controller configuration.
    pub fn config(&self) -> &DynConfig {
        &self.config
    }

    /// Initial deployment: the optimizer's plan at the initial statistics,
    /// balanced across the cluster with LLF (same starting point as ROD).
    pub fn initial_plan(
        &self,
        query: &Query,
        stats: &StatsSnapshot,
        cluster: &Cluster,
    ) -> Result<(LogicalPlan, PhysicalPlan)> {
        let optimizer = JoinOrderOptimizer::new(query.clone());
        let logical = optimizer.optimize(stats)?;
        let cost_model = CostModel::new(query.clone());
        let loads = cost_model.operator_loads(&logical, stats)?;
        let physical = llf_assign(query, &loads, cluster)?.ok_or_else(|| {
            RldError::Infeasible(format!(
                "DYN cannot place {} operators on {} nodes",
                query.num_operators(),
                cluster.num_nodes()
            ))
        })?;
        Ok((logical, physical))
    }

    /// Decide which operators to migrate given the current placement and the
    /// current per-operator loads. Returns an empty list when no node is
    /// overloaded or no productive move exists. The returned decisions are
    /// already applied in sequence to the load bookkeeping, so they are
    /// consistent with each other.
    pub fn rebalance(
        &self,
        query: &Query,
        current: &PhysicalPlan,
        op_loads: &[f64],
        cluster: &Cluster,
    ) -> Result<Vec<MigrationDecision>> {
        self.rebalance_with_capacities(query, current, op_loads, cluster.capacities())
    }

    /// [`Self::rebalance`] against an explicit per-node capacity vector —
    /// the availability-aware entry point. A capacity of zero (or less)
    /// marks a node as unavailable: it is never chosen as a migration
    /// target, and any operator still placed on it makes the node count as
    /// (infinitely) overloaded, so the controller evacuates it first.
    pub fn rebalance_with_capacities(
        &self,
        query: &Query,
        current: &PhysicalPlan,
        op_loads: &[f64],
        capacities: &[f64],
    ) -> Result<Vec<MigrationDecision>> {
        if op_loads.len() != query.num_operators() {
            return Err(RldError::InvalidArgument(format!(
                "expected {} operator loads, got {}",
                query.num_operators(),
                op_loads.len()
            )));
        }
        if capacities.len() < current.num_nodes() {
            return Err(RldError::InvalidArgument(format!(
                "expected capacities for {} nodes, got {}",
                current.num_nodes(),
                capacities.len()
            )));
        }
        if capacities.iter().all(|c| *c <= 0.0) {
            return Ok(Vec::new()); // total outage: nowhere to move anything
        }
        let mut plan = current.clone();
        let mut decisions = Vec::new();
        for _ in 0..self.config.max_moves_per_round {
            let loads = node_loads(&plan, op_loads);
            // Most overloaded node relative to its (effective) capacity; an
            // unavailable node hosting any operator is infinitely overloaded.
            let overloaded = loads
                .iter()
                .enumerate()
                .filter_map(|(i, l)| {
                    let cap = capacities[i];
                    if cap <= 0.0 {
                        (!plan.operators_on(NodeId::new(i)).is_empty())
                            .then_some((i, f64::INFINITY))
                    } else {
                        Some((i, l / cap))
                    }
                })
                .filter(|(_, ratio)| *ratio > self.config.overload_threshold)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let Some((from_idx, _)) = overloaded else {
                break;
            };
            let from = NodeId::new(from_idx);
            // Least-loaded other *available* node.
            let Some((to_idx, to_load)) = loads
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != from_idx && capacities[*i] > 0.0)
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            else {
                break;
            };
            let to = NodeId::new(to_idx);
            // Move the largest operator that fits in the target's remaining capacity.
            let headroom = capacities[to_idx] - to_load;
            let candidate = plan
                .operators_on(from)
                .iter()
                .copied()
                .filter(|op| op_loads[op.index()] <= headroom + 1e-9)
                .max_by(|a, b| {
                    op_loads[a.index()]
                        .partial_cmp(&op_loads[b.index()])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let Some(op) = candidate else {
                break; // nothing movable
            };
            if op_loads[op.index()] <= 0.0 {
                break; // moving a zero-load operator never helps
            }
            plan = plan.with_operator_moved(op, to)?;
            decisions.push(MigrationDecision {
                operator: op,
                from,
                to,
                state_bytes: query.operator(op)?.state_bytes,
            });
        }
        Ok(decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1() -> Query {
        Query::q1_stock_monitoring()
    }

    #[test]
    fn initial_plan_is_balanced_and_valid() {
        let q = q1();
        let cluster = Cluster::homogeneous(3, 1e6).unwrap();
        let (lp, pp) = DynPlanner::new()
            .initial_plan(&q, &q.default_stats(), &cluster)
            .unwrap();
        assert_eq!(lp.len(), q.num_operators());
        assert_eq!(pp.num_operators(), q.num_operators());
    }

    #[test]
    fn no_migration_when_balanced() {
        let q = q1();
        let cluster = Cluster::homogeneous(2, 1000.0).unwrap();
        let pp = PhysicalPlan::new(
            &q,
            vec![
                vec![OperatorId::new(0), OperatorId::new(1)],
                vec![OperatorId::new(2), OperatorId::new(3), OperatorId::new(4)],
            ],
        )
        .unwrap();
        let loads = vec![10.0, 10.0, 10.0, 10.0, 10.0];
        let decisions = DynPlanner::new()
            .rebalance(&q, &pp, &loads, &cluster)
            .unwrap();
        assert!(decisions.is_empty());
    }

    #[test]
    fn overload_triggers_migration_to_least_loaded_node() {
        let q = q1();
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        // Node 0 overloaded (140), node 1 nearly idle (5).
        let pp = PhysicalPlan::new(
            &q,
            vec![
                vec![
                    OperatorId::new(0),
                    OperatorId::new(1),
                    OperatorId::new(2),
                    OperatorId::new(3),
                ],
                vec![OperatorId::new(4)],
            ],
        )
        .unwrap();
        let loads = vec![60.0, 40.0, 30.0, 10.0, 5.0];
        let decisions = DynPlanner::new()
            .rebalance(&q, &pp, &loads, &cluster)
            .unwrap();
        assert!(!decisions.is_empty());
        let first = decisions[0];
        assert_eq!(first.from, NodeId::new(0));
        assert_eq!(first.to, NodeId::new(1));
        // It moves the largest operator that fits in node 1's 95 units of headroom.
        assert_eq!(first.operator, OperatorId::new(0));
    }

    #[test]
    fn migration_respects_target_capacity() {
        let q = q1();
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        let pp = PhysicalPlan::new(
            &q,
            vec![
                vec![OperatorId::new(0), OperatorId::new(1)],
                vec![OperatorId::new(2), OperatorId::new(3), OperatorId::new(4)],
            ],
        )
        .unwrap();
        // Node 0 has two 95-load operators; node 1 is at 90: nothing fits there.
        let loads = vec![95.0, 95.0, 30.0, 30.0, 30.0];
        let decisions = DynPlanner::new()
            .rebalance(&q, &pp, &loads, &cluster)
            .unwrap();
        assert!(decisions.is_empty());
    }

    #[test]
    fn max_moves_per_round_is_respected() {
        let q = q1();
        let cluster = Cluster::homogeneous(2, 50.0).unwrap();
        let pp = PhysicalPlan::new(
            &q,
            vec![
                vec![
                    OperatorId::new(0),
                    OperatorId::new(1),
                    OperatorId::new(2),
                    OperatorId::new(3),
                    OperatorId::new(4),
                ],
                vec![],
            ],
        )
        .unwrap();
        let loads = vec![20.0, 20.0, 20.0, 20.0, 20.0];
        let planner = DynPlanner::with_config(DynConfig {
            overload_threshold: 0.5,
            max_moves_per_round: 2,
        });
        let decisions = planner.rebalance(&q, &pp, &loads, &cluster).unwrap();
        assert!(decisions.len() <= 2);
        assert!(!decisions.is_empty());
        // State sizes come from the operator specs.
        for d in &decisions {
            assert_eq!(d.state_bytes, q.operator(d.operator).unwrap().state_bytes);
        }
    }

    #[test]
    fn unavailable_nodes_are_evacuated_and_never_targeted() {
        let q = q1();
        let pp = PhysicalPlan::new(
            &q,
            vec![
                vec![OperatorId::new(0), OperatorId::new(1)],
                vec![OperatorId::new(2)],
                vec![OperatorId::new(3), OperatorId::new(4)],
            ],
        )
        .unwrap();
        let loads = vec![10.0, 10.0, 10.0, 10.0, 10.0];
        // Node 1 is down (capacity 0): its operator must be moved off, and
        // nothing may move onto it even though it is the least loaded.
        let caps = vec![100.0, 0.0, 100.0];
        let decisions = DynPlanner::new()
            .rebalance_with_capacities(&q, &pp, &loads, &caps)
            .unwrap();
        assert!(!decisions.is_empty());
        for d in &decisions {
            assert_ne!(d.to, NodeId::new(1), "no migration onto a down node");
        }
        assert!(decisions.iter().any(|d| d.from == NodeId::new(1)));

        // Total outage: nothing to do rather than an error.
        let none = DynPlanner::new()
            .rebalance_with_capacities(&q, &pp, &loads, &[0.0, 0.0, 0.0])
            .unwrap();
        assert!(none.is_empty());

        // A capacity vector shorter than the plan's node count is a typed
        // error, not an index panic.
        let err = DynPlanner::new()
            .rebalance_with_capacities(&q, &pp, &loads, &[100.0])
            .unwrap_err();
        assert!(matches!(err, RldError::InvalidArgument(_)), "{err:?}");
    }

    #[test]
    fn wrong_load_vector_is_rejected() {
        let q = q1();
        let cluster = Cluster::homogeneous(2, 1e6).unwrap();
        let (_, pp) = DynPlanner::new()
            .initial_plan(&q, &q.default_stats(), &cluster)
            .unwrap();
        assert!(DynPlanner::new()
            .rebalance(&q, &pp, &[1.0, 2.0], &cluster)
            .is_err());
    }
}
