//! The support model: what it means for a physical plan to support a robust
//! logical solution, and how physical plans are scored.
//!
//! For every robust logical plan the model precomputes
//!
//! * its **worst-case per-operator loads**: because the cost model is monotone,
//!   the load of each operator under plan `lp` anywhere inside `lp`'s robust
//!   region is bounded by its load at the region's top corner `pntHi`
//!   (this is the `cost(lp_i)max` bookkeeping of Figure 4), and
//! * its **occurrence weight** (§5.2): the probability that runtime statistics
//!   fall inside its robust region under the occurrence model.
//!
//! A physical plan *supports* a logical plan when every node's total
//! worst-case load for that plan stays within the node's capacity
//! (Definition 3 condition 1). The *score* of a physical plan is the sum of
//! the weights of the logical plans it supports — the objective maximized by
//! GreedyPhy and OptPrune.

use crate::cluster::Cluster;
use crate::plan::PhysicalPlan;
use rld_common::{NodeId, OperatorId, Query, Result};
use rld_logical::RobustLogicalSolution;
use rld_paramspace::{OccurrenceModel, ParameterSpace, Region, RegionSet};
use rld_query::{CostModel, LogicalPlan};
use serde::{Deserialize, Serialize};

/// Worst-case load profile and weight of one robust logical plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanLoadProfile {
    /// The logical plan.
    pub plan: LogicalPlan,
    /// Occurrence weight of the plan's robust region (§5.2).
    pub weight: f64,
    /// Worst-case per-second load of each operator (indexed by operator id)
    /// when this plan executes anywhere in its robust region.
    pub loads: Vec<f64>,
    /// The plan's robust regions (kept for coverage accounting).
    pub regions: Vec<Region>,
}

impl PlanLoadProfile {
    /// Total worst-case load of a set of operators under this plan.
    pub fn load_of(&self, ops: &[OperatorId]) -> f64 {
        ops.iter().map(|op| self.loads[op.index()]).sum()
    }
}

/// Statistics reported by the physical plan generators (Figures 13–14).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhysicalSearchStats {
    /// Wall-clock time of the search in microseconds (Figure 13's compile time).
    pub elapsed_micros: u64,
    /// Number of search-tree vertices / candidate assignments examined.
    pub nodes_expanded: usize,
    /// Score (total supported weight) of the returned physical plan.
    pub score: f64,
    /// Number of logical plans supported by the returned physical plan.
    pub supported_plans: usize,
    /// Number of logical plans from the solution that had to be dropped.
    pub dropped_plans: usize,
    /// Number of search-tree branches cut by a pruning rule (0 for solvers
    /// without a branch-and-bound search).
    pub nodes_pruned: usize,
    /// Number of times the incumbent (best-so-far) solution was replaced.
    pub incumbent_updates: usize,
}

impl PhysicalSearchStats {
    /// Elapsed time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_micros as f64 / 1000.0
    }
}

/// Precomputed support/scoring model binding a query, a parameter space and a
/// robust logical solution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupportModel {
    query: Query,
    profiles: Vec<PlanLoadProfile>,
    lp_max: Vec<f64>,
    total_cells: f64,
}

impl SupportModel {
    /// Build the support model for a robust logical solution.
    pub fn build(
        query: &Query,
        space: &ParameterSpace,
        solution: &RobustLogicalSolution,
        occurrence: OccurrenceModel,
    ) -> Result<Self> {
        let cost_model = CostModel::new(query.clone());
        let mut profiles = Vec::with_capacity(solution.len());
        for entry in solution.entries() {
            let mut loads = vec![0.0f64; query.num_operators()];
            for region in &entry.regions {
                let stats = space.snapshot_at(&region.pnt_hi());
                let region_loads = cost_model.operator_loads(&entry.plan, &stats)?;
                for (l, r) in loads.iter_mut().zip(region_loads) {
                    *l = (*l).max(r);
                }
            }
            profiles.push(PlanLoadProfile {
                plan: entry.plan.clone(),
                weight: entry.occurrence_weight(space, occurrence),
                loads,
                regions: entry.regions.clone(),
            });
        }
        let mut lp_max = vec![0.0f64; query.num_operators()];
        for p in &profiles {
            for (m, l) in lp_max.iter_mut().zip(&p.loads) {
                *m = (*m).max(*l);
            }
        }
        Ok(Self {
            query: query.clone(),
            profiles,
            lp_max,
            total_cells: space.total_cells_f64(),
        })
    }

    /// Build a support model directly from precomputed load profiles.
    ///
    /// The bench harness and the equivalence proptests use this to construct
    /// synthetic Q1/Q2-shaped plan sets without running the logical solvers;
    /// `lp_max` is rederived from the profiles exactly as [`Self::build`]
    /// does. `total_cells` only scales [`Self::coverage`] and must be
    /// strictly positive.
    pub fn from_profiles(query: &Query, profiles: Vec<PlanLoadProfile>, total_cells: f64) -> Self {
        let mut lp_max = vec![0.0f64; query.num_operators()];
        for p in &profiles {
            for (m, l) in lp_max.iter_mut().zip(&p.loads) {
                *m = (*m).max(*l);
            }
        }
        Self {
            query: query.clone(),
            profiles,
            lp_max,
            total_cells: total_cells.max(f64::MIN_POSITIVE),
        }
    }

    /// The query being planned.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Number of operators in the query.
    pub fn num_operators(&self) -> usize {
        self.query.num_operators()
    }

    /// The per-plan load profiles (in solution order).
    pub fn profiles(&self) -> &[PlanLoadProfile] {
        &self.profiles
    }

    /// The `lp_max` load vector: for each operator, its maximum worst-case
    /// load across all logical plans (GreedyPhy packs this virtual plan).
    pub fn lp_max_loads(&self) -> &[f64] {
        &self.lp_max
    }

    /// `lp_max` restricted to a subset of profiles (identified by index).
    pub fn lp_max_loads_of(&self, profile_indices: &[usize]) -> Vec<f64> {
        let mut lp_max = vec![0.0f64; self.num_operators()];
        for &i in profile_indices {
            for (m, l) in lp_max.iter_mut().zip(&self.profiles[i].loads) {
                *m = (*m).max(*l);
            }
        }
        lp_max
    }

    /// Sum of all plan weights (the maximum achievable score).
    pub fn total_weight(&self) -> f64 {
        self.profiles.iter().map(|p| p.weight).sum()
    }

    /// Whether a physical plan supports profile `idx`: every node's total
    /// worst-case load under that plan is within the node's capacity.
    ///
    /// Empty nodes always fit (capacities are strictly positive), so only
    /// occupied nodes are probed — at 512 nodes and a handful of operators
    /// this is the difference between O(nodes) and O(operators) per profile.
    pub fn plan_supported(&self, pp: &PhysicalPlan, idx: usize, cluster: &Cluster) -> bool {
        if pp.num_nodes() > cluster.num_nodes() {
            return false;
        }
        let profile = &self.profiles[idx];
        pp.occupied()
            .all(|(node, ops)| profile.load_of(ops) <= cluster.capacity(node) + 1e-9)
    }

    /// Indices of all profiles supported by a physical plan.
    pub fn supported_indices(&self, pp: &PhysicalPlan, cluster: &Cluster) -> Vec<usize> {
        if pp.num_nodes() > cluster.num_nodes() {
            return Vec::new();
        }
        // Collect the occupied nodes once: probing the collected list per
        // profile visits the same nodes in the same order as
        // [`Self::plan_supported`], but skips the O(nodes) empty-node sweep
        // each of the `profiles.len()` feasibility checks would repeat.
        let occupied: Vec<(NodeId, &[OperatorId])> = pp.occupied().collect();
        (0..self.profiles.len())
            .filter(|i| {
                let profile = &self.profiles[*i];
                occupied
                    .iter()
                    .all(|(node, ops)| profile.load_of(ops) <= cluster.capacity(*node) + 1e-9)
            })
            .collect()
    }

    /// Score of a physical plan: total weight of the supported logical plans.
    pub fn score(&self, pp: &PhysicalPlan, cluster: &Cluster) -> f64 {
        self.supported_indices(pp, cluster)
            .iter()
            .map(|i| self.profiles[*i].weight)
            .sum()
    }

    /// Fraction of the parameter space's cells covered by the robust regions
    /// of the logical plans a physical plan supports — the "parameter space
    /// coverage" of Figure 14. Computed geometrically (disjoint box
    /// decomposition), so it stays exact on high-dimensional spaces.
    pub fn coverage(&self, pp: &PhysicalPlan, cluster: &Cluster) -> f64 {
        let set = RegionSet::from_regions(
            self.supported_indices(pp, cluster)
                .iter()
                .flat_map(|i| self.profiles[*i].regions.iter()),
        );
        set.volume_f64() / self.total_cells
    }

    /// Worst-case load of an operator subset under profile `idx`.
    pub fn config_load_under(&self, ops: &[OperatorId], idx: usize) -> f64 {
        self.profiles[idx].load_of(ops)
    }

    /// Whether an operator subset can fit on a node of the given capacity
    /// under *at least one* logical plan (the feasibility notion OptPrune
    /// uses when enumerating single-machine configurations).
    pub fn config_feasible(&self, ops: &[OperatorId], capacity: f64) -> bool {
        if self.profiles.is_empty() {
            return true;
        }
        self.profiles
            .iter()
            .any(|p| p.load_of(ops) <= capacity + 1e-9)
    }

    /// Build search statistics for a finished physical plan.
    pub fn stats_for(
        &self,
        pp: &PhysicalPlan,
        cluster: &Cluster,
        elapsed_micros: u64,
        nodes_expanded: usize,
    ) -> PhysicalSearchStats {
        let supported = self.supported_indices(pp, cluster);
        PhysicalSearchStats {
            elapsed_micros,
            nodes_expanded,
            score: supported.iter().map(|i| self.profiles[*i].weight).sum(),
            supported_plans: supported.len(),
            dropped_plans: self.profiles.len() - supported.len(),
            nodes_pruned: 0,
            incumbent_updates: 0,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rld_common::{Query, UncertaintyLevel};
    use rld_logical::{EarlyTerminatedRobustPartitioning, ErpConfig, LogicalPlanGenerator};
    use rld_query::JoinOrderOptimizer;

    pub(crate) fn build_fixture(
        uncertainty: u32,
        steps: usize,
    ) -> (Query, ParameterSpace, RobustLogicalSolution) {
        let q = Query::q1_stock_monitoring();
        let est = q
            .selectivity_estimates(2, UncertaintyLevel::new(uncertainty))
            .unwrap();
        let space = ParameterSpace::from_estimates(&est, q.default_stats(), steps).unwrap();
        let opt = JoinOrderOptimizer::new(q.clone());
        let erp =
            EarlyTerminatedRobustPartitioning::new(&opt, &space, ErpConfig::with_epsilon(0.2));
        let (solution, _) = erp.generate().unwrap();
        (q, space, solution)
    }

    #[test]
    fn profiles_cover_every_solution_plan() {
        let (q, space, solution) = build_fixture(3, 9);
        let model = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        assert_eq!(model.profiles().len(), solution.len());
        assert!(model.total_weight() > 0.0);
        for p in model.profiles() {
            assert_eq!(p.loads.len(), q.num_operators());
            assert!(p.loads.iter().all(|l| *l >= 0.0));
            assert!(p.weight >= 0.0);
        }
    }

    #[test]
    fn lp_max_dominates_every_profile() {
        let (q, space, solution) = build_fixture(3, 9);
        let model = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        let lp_max = model.lp_max_loads();
        for p in model.profiles() {
            for (m, l) in lp_max.iter().zip(&p.loads) {
                assert!(m + 1e-12 >= *l);
            }
        }
        // Restricting to all profiles reproduces lp_max.
        let all: Vec<usize> = (0..model.profiles().len()).collect();
        let restricted = model.lp_max_loads_of(&all);
        for (a, b) in restricted.iter().zip(lp_max) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn huge_capacity_supports_everything() {
        let (q, space, solution) = build_fixture(2, 7);
        let model = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        let cluster = Cluster::homogeneous(2, 1e12).unwrap();
        let pp = PhysicalPlan::new(
            &q,
            vec![
                q.operator_ids()[..2].to_vec(),
                q.operator_ids()[2..].to_vec(),
            ],
        )
        .unwrap();
        assert_eq!(
            model.supported_indices(&pp, &cluster).len(),
            model.profiles().len()
        );
        assert!((model.score(&pp, &cluster) - model.total_weight()).abs() < 1e-9);
        let stats = model.stats_for(&pp, &cluster, 10, 1);
        assert_eq!(stats.dropped_plans, 0);
        assert!(model.coverage(&pp, &cluster) > 0.5);
    }

    #[test]
    fn tiny_capacity_supports_nothing() {
        let (q, space, solution) = build_fixture(2, 7);
        let model = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        let cluster = Cluster::homogeneous(2, 1e-9).unwrap();
        let pp = PhysicalPlan::new(
            &q,
            vec![
                q.operator_ids()[..2].to_vec(),
                q.operator_ids()[2..].to_vec(),
            ],
        )
        .unwrap();
        assert!(model.supported_indices(&pp, &cluster).is_empty());
        assert_eq!(model.score(&pp, &cluster), 0.0);
        assert_eq!(model.coverage(&pp, &cluster), 0.0);
        let stats = model.stats_for(&pp, &cluster, 10, 1);
        assert_eq!(stats.supported_plans, 0);
        assert_eq!(stats.dropped_plans, model.profiles().len());
    }

    #[test]
    fn config_feasibility_uses_best_case_plan() {
        let (q, space, solution) = build_fixture(3, 9);
        let model = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        let all_ops = q.operator_ids();
        // With infinite capacity everything fits; with zero capacity nothing does.
        assert!(model.config_feasible(&all_ops, f64::INFINITY));
        assert!(!model.config_feasible(&all_ops, 0.0));
        // Load under any profile is consistent with load_of.
        let load = model.config_load_under(&all_ops, 0);
        assert!(load > 0.0);
    }

    #[test]
    fn spreading_operators_increases_support() {
        let (q, space, solution) = build_fixture(3, 9);
        let model = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        // Pick a capacity where everything-on-one-node fails but spreading works.
        let total: f64 = model.lp_max_loads().iter().sum();
        let cluster = Cluster::homogeneous(5, total * 0.6).unwrap();
        let all_on_one =
            PhysicalPlan::new(&q, vec![q.operator_ids(), vec![], vec![], vec![], vec![]]).unwrap();
        let spread =
            PhysicalPlan::new(&q, q.operator_ids().iter().map(|op| vec![*op]).collect()).unwrap();
        assert!(model.score(&spread, &cluster) >= model.score(&all_on_one, &cluster));
    }
}
