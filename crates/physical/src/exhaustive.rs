//! Exhaustive physical plan search (the ES baseline of Figures 13–14).
//!
//! Enumerates every assignment of the `m` operators to the `n` machines
//! (`n^m` candidates, before symmetry) and keeps the one with the highest
//! supported weight. Only viable for small instances; it is the ground truth
//! that OptPrune must match (Theorem 3) and the cost yard-stick GreedyPhy is
//! compared against.

use crate::cluster::Cluster;
use crate::plan::PhysicalPlan;
use crate::support::{PhysicalSearchStats, SupportModel};
use crate::PhysicalPlanGenerator;
use rld_common::{NodeId, Result, RldError};
use std::time::Instant;

/// Exhaustive enumeration of all operator-to-machine assignments.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustivePhysicalSearch {
    /// Upper bound on the number of assignments that will be enumerated.
    pub max_assignments: u64,
}

impl Default for ExhaustivePhysicalSearch {
    fn default() -> Self {
        Self {
            max_assignments: 50_000_000,
        }
    }
}

impl ExhaustivePhysicalSearch {
    /// Create an exhaustive searcher with the default enumeration cap.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PhysicalPlanGenerator for ExhaustivePhysicalSearch {
    fn name(&self) -> &'static str {
        "ES"
    }

    fn generate(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats)> {
        // rld-allow(D2): compile-time solver wall-ms, reported in SolveStats only — never a tuple result
        let start = Instant::now();
        let m = model.num_operators();
        let n = cluster.num_nodes();
        let total = (n as u64)
            .checked_pow(m as u32)
            .ok_or_else(|| RldError::InvalidArgument("assignment space overflows u64".into()))?;
        if total > self.max_assignments {
            return Err(RldError::InvalidArgument(format!(
                "exhaustive search over {total} assignments exceeds the cap of {}",
                self.max_assignments
            )));
        }

        let mut best: Option<(f64, PhysicalPlan)> = None;
        let mut mapping = vec![NodeId::new(0); m];
        let mut examined = 0usize;
        loop {
            examined += 1;
            let pp = PhysicalPlan::from_mapping(model.query(), &mapping, n)?;
            let score = model.score(&pp, cluster);
            let better = match &best {
                Some((best_score, _)) => score > *best_score + 1e-12,
                None => true,
            };
            if better {
                best = Some((score, pp));
            }
            // Advance the mapping odometer.
            let mut i = 0;
            loop {
                if i == m {
                    let (_, plan) = best.expect("at least one assignment examined");
                    let stats = model.stats_for(
                        &plan,
                        cluster,
                        start.elapsed().as_micros() as u64,
                        examined,
                    );
                    return Ok((plan, stats));
                }
                if mapping[i].index() + 1 < n {
                    mapping[i] = NodeId::new(mapping[i].index() + 1);
                    break;
                }
                mapping[i] = NodeId::new(0);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_paramspace::OccurrenceModel;

    fn model(uncertainty: u32, steps: usize) -> (rld_common::Query, SupportModel) {
        let (q, space, solution) = crate::support::tests::build_fixture(uncertainty, steps);
        let m = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        (q, m)
    }

    #[test]
    fn exhaustive_enumerates_all_assignments() {
        let (_q, m) = model(2, 7);
        let cluster = Cluster::homogeneous(2, 1e9).unwrap();
        let (pp, stats) = ExhaustivePhysicalSearch::new()
            .generate(&m, &cluster)
            .unwrap();
        assert_eq!(stats.nodes_expanded, 2usize.pow(5));
        assert_eq!(pp.num_operators(), 5);
        assert!((stats.score - m.total_weight()).abs() < 1e-9);
        assert_eq!(ExhaustivePhysicalSearch::new().name(), "ES");
    }

    #[test]
    fn cap_is_enforced() {
        let (_q, m) = model(2, 7);
        let cluster = Cluster::homogeneous(6, 100.0).unwrap();
        let es = ExhaustivePhysicalSearch {
            max_assignments: 100,
        };
        assert!(es.generate(&m, &cluster).is_err());
    }

    #[test]
    fn best_score_is_at_least_any_fixed_assignment() {
        let (q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        let cluster = Cluster::homogeneous(3, total * 0.4).unwrap();
        let (_, es_stats) = ExhaustivePhysicalSearch::new()
            .generate(&m, &cluster)
            .unwrap();
        // Compare against an arbitrary round-robin assignment.
        let mapping: Vec<NodeId> = (0..q.num_operators()).map(|i| NodeId::new(i % 3)).collect();
        let rr = PhysicalPlan::from_mapping(&q, &mapping, 3).unwrap();
        assert!(es_stats.score + 1e-9 >= m.score(&rr, &cluster));
    }
}
