//! # rld-physical
//!
//! Robust physical plan generation (§5 of the paper) plus the two
//! state-of-the-art baselines used in the runtime evaluation (§6.5).
//!
//! A *physical plan* assigns every query operator to exactly one machine
//! (Definition 3). Given a robust logical solution (from `rld-logical`), the
//! planners in this crate try to find a single physical plan that *supports*
//! as many of the robust logical plans as possible — weighted by the
//! probability that runtime statistics fall into each plan's robust region —
//! subject to per-machine resource limits:
//!
//! * [`llf::llf_assign`] — Largest Load First list scheduling, the packing
//!   primitive used by GreedyPhy.
//! * [`greedy::GreedyPhy`] — Algorithm 4: drop the least-weighted logical
//!   plan until LLF succeeds on the remaining plans' worst-case loads.
//! * [`optprune::OptPrune`] — Algorithm 5: branch-and-bound over machine
//!   configurations, using the GreedyPhy score as the pruning bound; optimal
//!   (Theorem 3) but with bounded practical cost.
//! * [`exhaustive::ExhaustivePhysicalSearch`] — enumerate every assignment
//!   (ground truth for small instances, the ES baseline of Figures 13–14).
//! * [`rod::RodPlanner`] — the resilient-operator-distribution baseline
//!   (Xing et al.): a single balanced placement for a single logical plan.
//! * [`dyn_dist::DynPlanner`] — the Borealis-style dynamic load distribution
//!   baseline: reacts to overload at runtime by migrating operators.
//! * [`availability::ClusterView`] — the runtime availability overlay
//!   (crashed / degraded nodes) that fault-aware strategies balance against.
//!
//! The shared [`support::SupportModel`] precomputes each logical plan's
//! worst-case per-operator loads and occurrence weight, and scores physical
//! plans by the total weight of the logical plans they support.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod availability;
pub mod cluster;
pub mod dyn_dist;
pub mod exhaustive;
pub mod greedy;
pub mod llf;
pub mod naive;
pub mod optprune;
pub mod plan;
pub mod rod;
pub mod support;

pub use availability::ClusterView;
pub use cluster::Cluster;
pub use dyn_dist::{DynPlanner, MigrationDecision};
pub use exhaustive::ExhaustivePhysicalSearch;
pub use greedy::{GreedyPhy, PackMemo};
pub use llf::{llf_assign, LlfPacker};
pub use naive::{llf_assign_naive, NaiveGreedyPhy, NaiveOptPrune};
pub use optprune::OptPrune;
pub use plan::PhysicalPlan;
pub use rod::RodPlanner;
pub use support::{PhysicalSearchStats, PlanLoadProfile, SupportModel};

use rld_common::Result;

/// Common interface for physical plan generators so the benchmark harness can
/// sweep over GreedyPhy / OptPrune / exhaustive search uniformly.
pub trait PhysicalPlanGenerator {
    /// Human-readable algorithm name (`"GreedyPhy"`, `"OptPrune"`, `"ES"`).
    fn name(&self) -> &'static str;

    /// Produce a physical plan for the given support model and cluster,
    /// together with search statistics.
    fn generate(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats)>;
}
