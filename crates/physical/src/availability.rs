//! Runtime availability view of a cluster.
//!
//! The compile-time [`Cluster`] describes *nominal* machine capacities; at
//! runtime nodes crash, recover, or degrade (stragglers). A [`ClusterView`]
//! layers that dynamic state over a cluster: per node, whether it is up and
//! which fraction of its nominal capacity it currently delivers. The
//! simulator maintains the view as the fault plan unfolds and hands it to
//! distribution strategies through their cluster-change hook, so failover
//! logic (migrate off dead nodes, avoid stragglers) can be written against
//! one shared notion of "what capacity is actually there right now".

use crate::cluster::Cluster;
use rld_common::NodeId;
use serde::{Deserialize, Serialize};

/// Per-node availability and effective capacity over a [`Cluster`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterView {
    nominal: Vec<f64>,
    up: Vec<bool>,
    factors: Vec<f64>,
}

impl ClusterView {
    /// A view of the cluster with every node up at full capacity.
    pub fn all_up(cluster: &Cluster) -> Self {
        let n = cluster.num_nodes();
        Self {
            nominal: cluster.capacities().to_vec(),
            up: vec![true; n],
            factors: vec![1.0; n],
        }
    }

    /// Number of nodes in the underlying cluster.
    pub fn num_nodes(&self) -> usize {
        self.nominal.len()
    }

    /// Whether the node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.up[node.index()]
    }

    /// Whether every node is up at full capacity.
    pub fn all_nodes_healthy(&self) -> bool {
        self.up.iter().all(|u| *u) && self.factors.iter().all(|f| (*f - 1.0).abs() < 1e-12)
    }

    /// The nodes that are currently down, in index order.
    pub fn down_nodes(&self) -> Vec<NodeId> {
        self.up
            .iter()
            .enumerate()
            .filter(|(_, up)| !**up)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// The node's nominal (compile-time) capacity.
    pub fn nominal_capacity(&self, node: NodeId) -> f64 {
        self.nominal[node.index()]
    }

    /// The capacity the node currently delivers: nominal × degradation
    /// factor while up, zero while down.
    pub fn effective_capacity(&self, node: NodeId) -> f64 {
        if self.up[node.index()] {
            self.nominal[node.index()] * self.factors[node.index()]
        } else {
            0.0
        }
    }

    /// Effective capacities of every node, in node order (zero for down
    /// nodes) — the capacity vector availability-aware placement logic
    /// should balance against.
    pub fn effective_capacities(&self) -> Vec<f64> {
        (0..self.num_nodes())
            .map(|i| self.effective_capacity(NodeId::new(i)))
            .collect()
    }

    /// Total effective capacity across all nodes.
    pub fn available_total(&self) -> f64 {
        self.effective_capacities().iter().sum()
    }

    /// Fraction of the nominal total capacity currently available, in
    /// `[0, 1]`.
    pub fn available_fraction(&self) -> f64 {
        let nominal: f64 = self.nominal.iter().sum();
        if nominal <= 0.0 {
            0.0
        } else {
            (self.available_total() / nominal).clamp(0.0, 1.0)
        }
    }

    /// Mark a node down (crash) or up (recovery). Recovery restores the
    /// degradation factor the node last had.
    pub fn set_up(&mut self, node: NodeId, up: bool) {
        self.up[node.index()] = up;
    }

    /// Set a node's capacity degradation factor (1.0 = full speed). The
    /// factor must be positive; a dead node is modelled by [`Self::set_up`],
    /// not by a zero factor.
    pub fn set_capacity_factor(&mut self, node: NodeId, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "capacity factor must be positive and finite"
        );
        self.factors[node.index()] = factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_view_is_fully_available() {
        let c = Cluster::homogeneous(4, 100.0).unwrap();
        let v = ClusterView::all_up(&c);
        assert!(v.all_nodes_healthy());
        assert_eq!(v.num_nodes(), 4);
        assert_eq!(v.available_total(), 400.0);
        assert_eq!(v.available_fraction(), 1.0);
        assert!(v.down_nodes().is_empty());
    }

    #[test]
    fn crash_and_recovery_toggle_effective_capacity() {
        let c = Cluster::homogeneous(4, 100.0).unwrap();
        let mut v = ClusterView::all_up(&c);
        v.set_up(NodeId::new(1), false);
        assert!(!v.is_up(NodeId::new(1)));
        assert!(!v.all_nodes_healthy());
        assert_eq!(v.effective_capacity(NodeId::new(1)), 0.0);
        assert_eq!(v.nominal_capacity(NodeId::new(1)), 100.0);
        assert_eq!(v.available_total(), 300.0);
        assert_eq!(v.down_nodes(), vec![NodeId::new(1)]);
        v.set_up(NodeId::new(1), true);
        assert!(v.all_nodes_healthy());
        assert_eq!(v.available_total(), 400.0);
    }

    #[test]
    fn degradation_scales_capacity_and_survives_a_crash() {
        let c = Cluster::homogeneous(2, 100.0).unwrap();
        let mut v = ClusterView::all_up(&c);
        v.set_capacity_factor(NodeId::new(0), 0.25);
        assert!(!v.all_nodes_healthy());
        assert_eq!(v.effective_capacity(NodeId::new(0)), 25.0);
        assert!((v.available_fraction() - 0.625).abs() < 1e-12);
        // Crash then recover: the straggler factor is still in force.
        v.set_up(NodeId::new(0), false);
        assert_eq!(v.effective_capacity(NodeId::new(0)), 0.0);
        v.set_up(NodeId::new(0), true);
        assert_eq!(v.effective_capacity(NodeId::new(0)), 25.0);
        v.set_capacity_factor(NodeId::new(0), 1.0);
        assert!(v.all_nodes_healthy());
    }

    #[test]
    #[should_panic(expected = "capacity factor must be positive")]
    fn zero_factor_is_rejected() {
        let c = Cluster::homogeneous(1, 100.0).unwrap();
        let mut v = ClusterView::all_up(&c);
        v.set_capacity_factor(NodeId::new(0), 0.0);
    }
}
