//! ROD — the resilient operator distribution baseline (Xing et al., VLDB'06).
//!
//! ROD produces a single static operator placement intended to stay feasible
//! under load variations, but (per the paper's comparison in §7) it
//!
//! 1. considers only the *physical* placement of a *single* logical plan —
//!    it never switches plan orderings at runtime,
//! 2. assumes each operator's load is a linear function of input rates with
//!    fixed costs and selectivities, and
//! 3. does not migrate operators when the workload drifts outside what the
//!    placement can absorb.
//!
//! Our reimplementation captures those characteristics: it takes the
//! optimizer's plan at the single-point estimates, computes each operator's
//! load at those estimates, and balances the loads across nodes with Largest
//! Load First (maximizing headroom on every node, which is the essence of
//! ROD's feasible-set maximization for a homogeneous cluster). The resulting
//! `(logical plan, physical plan)` pair is what the runtime simulator executes
//! for the ROD arm of Figures 15–16.

use crate::cluster::Cluster;
use crate::llf::llf_assign;
use crate::plan::PhysicalPlan;
use rld_common::{Query, Result, RldError, StatsSnapshot};
use rld_query::{CostModel, JoinOrderOptimizer, LogicalPlan, Optimizer};

/// The ROD baseline planner.
#[derive(Debug, Clone, Copy, Default)]
pub struct RodPlanner;

/// The output of ROD planning: one logical plan and one static placement.
#[derive(Debug, Clone, PartialEq)]
pub struct RodPlan {
    /// The single logical plan ROD executes for the query's lifetime.
    pub logical: LogicalPlan,
    /// The static operator placement.
    pub physical: PhysicalPlan,
    /// The per-operator loads (at the estimate point) the placement balanced.
    pub loads: Vec<f64>,
}

impl RodPlanner {
    /// Create a ROD planner.
    pub fn new() -> Self {
        Self
    }

    /// Plan for a query given its single-point statistics and a cluster.
    ///
    /// `headroom` scales the estimated loads before packing (ROD plans for
    /// some slack above the estimates); `1.0` means no slack. Returns an error
    /// if even the scaled loads cannot be packed.
    pub fn plan(
        &self,
        query: &Query,
        stats: &StatsSnapshot,
        cluster: &Cluster,
        headroom: f64,
    ) -> Result<RodPlan> {
        if headroom <= 0.0 || !headroom.is_finite() {
            return Err(RldError::InvalidArgument(format!(
                "headroom must be positive and finite, got {headroom}"
            )));
        }
        let optimizer = JoinOrderOptimizer::new(query.clone());
        let logical = optimizer.optimize(stats)?;
        let cost_model = CostModel::new(query.clone());
        let loads: Vec<f64> = cost_model
            .operator_loads(&logical, stats)?
            .into_iter()
            .map(|l| l * headroom)
            .collect();
        let physical = llf_assign(query, &loads, cluster)?.ok_or_else(|| {
            RldError::Infeasible(format!(
                "ROD cannot place {} operators with headroom {headroom} on {} nodes",
                query.num_operators(),
                cluster.num_nodes()
            ))
        })?;
        Ok(RodPlan {
            logical,
            physical,
            loads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llf::node_loads;

    #[test]
    fn rod_produces_balanced_single_plan() {
        let q = Query::q1_stock_monitoring();
        let stats = q.default_stats();
        let cluster = Cluster::homogeneous(3, 1e6).unwrap();
        let plan = RodPlanner::new().plan(&q, &stats, &cluster, 1.0).unwrap();
        assert_eq!(plan.logical.len(), q.num_operators());
        assert_eq!(plan.physical.num_operators(), q.num_operators());
        // Its logical plan is the optimum at the estimate point.
        let opt = JoinOrderOptimizer::new(q.clone());
        assert_eq!(plan.logical, opt.optimize(&stats).unwrap());
        // Loads within capacity.
        let per_node = node_loads(&plan.physical, &plan.loads);
        assert!(per_node.iter().all(|l| *l <= 1e6));
    }

    #[test]
    fn headroom_scales_loads() {
        let q = Query::q1_stock_monitoring();
        let stats = q.default_stats();
        let cluster = Cluster::homogeneous(3, 1e6).unwrap();
        let tight = RodPlanner::new().plan(&q, &stats, &cluster, 1.0).unwrap();
        let slack = RodPlanner::new().plan(&q, &stats, &cluster, 2.0).unwrap();
        let t: f64 = tight.loads.iter().sum();
        let s: f64 = slack.loads.iter().sum();
        assert!((s - 2.0 * t).abs() < 1e-6);
    }

    #[test]
    fn infeasible_cluster_reports_error() {
        let q = Query::q1_stock_monitoring();
        let stats = q.default_stats();
        let cluster = Cluster::homogeneous(2, 1e-6).unwrap();
        assert!(matches!(
            RodPlanner::new().plan(&q, &stats, &cluster, 1.0),
            Err(RldError::Infeasible(_))
        ));
        assert!(RodPlanner::new().plan(&q, &stats, &cluster, 0.0).is_err());
    }
}
