//! OptPrune (Algorithm 5): optimal robust physical plan generation by
//! branch-and-bound over single-machine configurations.
//!
//! OptPrune enumerates the *configurations* (subsets of operators that can
//! fit on one machine under at least one supported logical plan), then
//! depth-first searches over partitions of the operator set into at most `N`
//! configurations. The score of a (partial) physical plan is the total
//! occurrence weight of the logical plans not yet violated by any placed
//! configuration; by Lemma 1 adding a configuration can only lower that
//! score, so any branch whose score falls below the best known complete
//! solution — initialized with the GreedyPhy result — can be pruned safely
//! (Theorem 3). The search therefore returns the optimal-score physical plan
//! while examining only a small fraction of the space in practice.

use crate::cluster::Cluster;
use crate::greedy::GreedyPhy;
use crate::plan::PhysicalPlan;
use crate::support::{PhysicalSearchStats, SupportModel};
use crate::PhysicalPlanGenerator;
use rld_common::{OperatorId, Result, RldError};
use std::time::Instant;

/// The OptPrune physical plan generator.
#[derive(Debug, Clone, Copy)]
pub struct OptPrune {
    /// Hard cap on search-tree expansions (a backstop far above what the
    /// paper's query sizes ever need; the bound from GreedyPhy keeps the
    /// practical search tiny).
    pub max_expansions: usize,
}

impl Default for OptPrune {
    fn default() -> Self {
        Self {
            max_expansions: 2_000_000,
        }
    }
}

impl OptPrune {
    /// Maximum number of operators supported (configuration enumeration is
    /// exponential in the operator count).
    pub const MAX_OPERATORS: usize = 20;

    /// Create an OptPrune generator with default limits.
    pub fn new() -> Self {
        Self::default()
    }
}

struct SearchState<'a> {
    model: &'a SupportModel,
    cluster: &'a Cluster,
    capacity: f64,
    configs: Vec<Vec<OperatorId>>,
    /// configs represented as bitmasks for fast disjointness tests.
    config_masks: Vec<u32>,
    num_ops: usize,
    best_plan: Option<Vec<usize>>,
    best_score: f64,
    /// Balance (max per-node `lp_max` load) of the best plan found so far;
    /// used only to break ties between equal-score plans in favour of the
    /// more balanced placement (better runtime behaviour, same optimality).
    best_balance: f64,
    lp_max: Vec<f64>,
    total_weight: f64,
    expansions: usize,
    max_expansions: usize,
}

impl<'a> SearchState<'a> {
    /// Score of a partial assignment: total weight of profiles not violated
    /// by any chosen configuration.
    fn partial_score(&self, chosen: &[usize]) -> f64 {
        self.model
            .profiles()
            .iter()
            .enumerate()
            .filter(|(p_idx, _)| {
                chosen.iter().all(|c| {
                    self.model.config_load_under(&self.configs[*c], *p_idx) <= self.capacity + 1e-9
                })
            })
            .map(|(_, p)| p.weight)
            .sum()
    }

    fn dfs(&mut self, chosen: &mut Vec<usize>, covered: u32) {
        if self.expansions >= self.max_expansions {
            return;
        }
        self.expansions += 1;

        let all_covered = covered.count_ones() as usize == self.num_ops;
        if all_covered {
            let score = self.partial_score(chosen);
            let balance = chosen
                .iter()
                .map(|c| {
                    self.configs[*c]
                        .iter()
                        .map(|op| self.lp_max[op.index()])
                        .sum::<f64>()
                })
                .fold(0.0f64, f64::max);
            let better_score = score > self.best_score + 1e-12;
            let equal_but_more_balanced =
                (score - self.best_score).abs() <= 1e-12 && balance < self.best_balance - 1e-12;
            // Only adopt a complete plan when it is at least as good as the
            // incumbent bound (which starts at the GreedyPhy score); the
            // GreedyPhy plan itself remains the fallback otherwise.
            if better_score || equal_but_more_balanced {
                self.best_score = score.max(self.best_score);
                self.best_balance = balance;
                self.best_plan = Some(chosen.clone());
            }
            return;
        }
        if chosen.len() >= self.cluster.num_nodes() {
            return; // no machines left
        }
        // Prune: even keeping every currently-unviolated plan cannot beat the
        // bound (the GreedyPhy plan is always available as a fallback, so
        // pruning below its score is safe from the start — Theorem 3).
        let upper = self.partial_score(chosen);
        if upper < self.best_score - 1e-12 {
            return;
        }
        // Branch on configurations containing the lowest-indexed uncovered
        // operator, so each partition is enumerated exactly once.
        let first_uncovered = (0..self.num_ops)
            .find(|i| covered & (1 << i) == 0)
            .expect("not all covered");
        for c_idx in 0..self.configs.len() {
            let mask = self.config_masks[c_idx];
            if mask & (1 << first_uncovered) == 0 || mask & covered != 0 {
                continue;
            }
            chosen.push(c_idx);
            self.dfs(chosen, covered | mask);
            chosen.pop();
            if self.expansions >= self.max_expansions {
                return;
            }
            // Early exit: a complete plan supporting every logical plan is optimal.
            if self.best_plan.is_some()
                && (self.best_score - self.total_weight).abs() < 1e-12
                && self.total_weight > 0.0
            {
                return;
            }
        }
    }
}

impl PhysicalPlanGenerator for OptPrune {
    fn name(&self) -> &'static str {
        "OptPrune"
    }

    fn generate(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats)> {
        // rld-allow(D2): compile-time solver wall-ms, reported in SolveStats only — never a tuple result
        let start = Instant::now();
        let num_ops = model.num_operators();
        if num_ops > Self::MAX_OPERATORS {
            return Err(RldError::InvalidArgument(format!(
                "OptPrune supports up to {} operators, query has {num_ops}",
                Self::MAX_OPERATORS
            )));
        }
        if !cluster.is_homogeneous() {
            return Err(RldError::InvalidArgument(
                "OptPrune assumes a homogeneous cluster (as in the paper)".into(),
            ));
        }
        let capacity = cluster.capacities()[0];

        // Seed the bound with GreedyPhy (Algorithm 5 lines 2-3).
        let (greedy_plan, _greedy_stats) = GreedyPhy::new().generate(model, cluster)?;
        let greedy_score = model.score(&greedy_plan, cluster);

        // Enumerate feasible single-machine configurations (Algorithm 5 line 1):
        // non-empty operator subsets that fit on one machine under at least one
        // logical plan — or under no plan at all when the solution is empty /
        // nothing fits (so a valid partition still exists).
        let op_ids: Vec<OperatorId> = model.query().operator_ids();
        let mut configs: Vec<Vec<OperatorId>> = Vec::new();
        for mask in 1u32..(1u32 << num_ops) {
            let ops: Vec<OperatorId> = (0..num_ops)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| op_ids[i])
                .collect();
            if model.profiles().is_empty()
                || model.config_feasible(&ops, capacity)
                || ops.len() == 1
            {
                // Singleton configs are always allowed so a complete partition
                // exists even when nothing fits (score 0, like GreedyPhy).
                configs.push(ops);
            }
        }
        // Sort by decreasing operator count (Algorithm 5 lines 5-6).
        configs.sort_by_key(|c| std::cmp::Reverse(c.len()));
        let config_masks: Vec<u32> = configs
            .iter()
            .map(|ops| ops.iter().fold(0u32, |m, op| m | (1 << op.index())))
            .collect();

        let mut state = SearchState {
            model,
            cluster,
            capacity,
            configs,
            config_masks,
            num_ops,
            best_plan: None,
            best_score: greedy_score,
            best_balance: f64::INFINITY,
            lp_max: model.lp_max_loads().to_vec(),
            total_weight: model.total_weight(),
            expansions: 0,
            max_expansions: self.max_expansions,
        };
        let mut chosen = Vec::new();
        state.dfs(&mut chosen, 0);

        let plan = match state.best_plan {
            Some(chosen) => {
                let mut assignment: Vec<Vec<OperatorId>> =
                    chosen.iter().map(|c| state.configs[*c].clone()).collect();
                assignment.resize(cluster.num_nodes(), Vec::new());
                let candidate = PhysicalPlan::new(model.query(), assignment)?;
                // Never return anything worse than the GreedyPhy bound.
                if model.score(&candidate, cluster) + 1e-12 >= greedy_score {
                    candidate
                } else {
                    greedy_plan
                }
            }
            // The DFS found nothing better than (or equal to) GreedyPhy.
            None => greedy_plan,
        };
        let stats = model.stats_for(
            &plan,
            cluster,
            start.elapsed().as_micros() as u64,
            state.expansions,
        );
        Ok((plan, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustivePhysicalSearch;
    use rld_paramspace::OccurrenceModel;

    fn model(uncertainty: u32, steps: usize) -> (rld_common::Query, SupportModel) {
        let (q, space, solution) = crate::support::tests::build_fixture(uncertainty, steps);
        let m = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        (q, m)
    }

    #[test]
    fn optprune_matches_exhaustive_score() {
        let (_q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        for fraction in [0.3, 0.5, 0.8] {
            let cluster = Cluster::homogeneous(3, total * fraction).unwrap();
            let (_, opt_stats) = OptPrune::new().generate(&m, &cluster).unwrap();
            let (_, es_stats) = ExhaustivePhysicalSearch::new()
                .generate(&m, &cluster)
                .unwrap();
            assert!(
                (opt_stats.score - es_stats.score).abs() < 1e-9,
                "fraction {fraction}: OptPrune {} != ES {}",
                opt_stats.score,
                es_stats.score
            );
        }
    }

    #[test]
    fn optprune_never_worse_than_greedy() {
        let (_q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        for fraction in [0.2, 0.4, 0.6, 1.0] {
            let cluster = Cluster::homogeneous(2, total * fraction).unwrap();
            let (_, g) = GreedyPhy::new().generate(&m, &cluster).unwrap();
            let (_, o) = OptPrune::new().generate(&m, &cluster).unwrap();
            assert!(
                o.score + 1e-9 >= g.score,
                "fraction {fraction}: OptPrune {} < GreedyPhy {}",
                o.score,
                g.score
            );
        }
    }

    #[test]
    fn ample_resources_support_everything() {
        let (_q, m) = model(2, 7);
        let cluster = Cluster::homogeneous(3, 1e9).unwrap();
        let (pp, stats) = OptPrune::new().generate(&m, &cluster).unwrap();
        assert_eq!(stats.dropped_plans, 0);
        assert_eq!(pp.num_operators(), m.num_operators());
        assert!((stats.score - m.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_cluster_rejected() {
        let (_q, m) = model(2, 7);
        let cluster = Cluster::new(vec![10.0, 20.0]).unwrap();
        assert!(OptPrune::new().generate(&m, &cluster).is_err());
    }

    #[test]
    fn tiny_capacity_still_partitions() {
        let (_q, m) = model(2, 7);
        let cluster = Cluster::homogeneous(5, 1e-6).unwrap();
        let (pp, stats) = OptPrune::new().generate(&m, &cluster).unwrap();
        assert_eq!(pp.num_operators(), m.num_operators());
        assert_eq!(stats.score, 0.0);
    }
}
