//! OptPrune (Algorithm 5): optimal robust physical plan generation by
//! branch-and-bound over single-machine configurations.
//!
//! OptPrune enumerates the *configurations* (subsets of operators that can
//! fit on one machine under at least one supported logical plan), then
//! depth-first searches over partitions of the operator set into at most `N`
//! configurations. The score of a (partial) physical plan is the total
//! occurrence weight of the logical plans not yet violated by any placed
//! configuration; by Lemma 1 adding a configuration can only lower that
//! score, so any branch whose score falls below the best known complete
//! solution — initialized with the GreedyPhy result — can be pruned safely
//! (Theorem 3). The search therefore returns the optimal-score physical plan
//! while examining only a small fraction of the space in practice.
//!
//! The search is incremental and pruned beyond the paper's baseline, while
//! returning placements bit-identical to the retained reference
//! ([`crate::naive::NaiveOptPrune`]):
//!
//! * **Incremental scoring.** Each configuration's per-profile loads are
//!   precomputed once; pushing a configuration increments a violation
//!   counter on the profiles it kills, popping decrements. `partial_score`
//!   becomes one pass over the profiles in index order — the same float
//!   summation the reference performs, with the per-vertex
//!   `O(profiles · chosen · ops)` load recomputation gone.
//! * **Weight-density ordering.** Configurations are ordered by killed
//!   weight per covered operator (shared with the reference via
//!   [`ordered_configs`], so both searches traverse the same tree), which
//!   tightens the incumbent early and makes the score bound bite sooner.
//! * **Balance-aware bound.** A subtree whose optimistic score cannot
//!   *strictly* beat the incumbent and whose running balance (max per-node
//!   `lp_max` load along the path) is already no better than the
//!   incumbent's can adopt nothing — the equal-score tie-break requires a
//!   strictly more balanced plan — and is cut.
//! * **Dominance check.** A vertex covering the same operator set as an
//!   already fully-expanded sibling, with a *subset* of its surviving
//!   profiles, an equal-or-worse balance and no more machines spent, is
//!   pointwise dominated: every completion it could reach, the sibling
//!   already reached with equal-or-better score and balance. Such vertices
//!   are cut without descending.

use crate::cluster::Cluster;
use crate::greedy::GreedyPhy;
use crate::plan::PhysicalPlan;
use crate::support::{PhysicalSearchStats, SupportModel};
use crate::PhysicalPlanGenerator;
use rld_common::{OperatorId, Result, RldError};
use std::collections::BTreeMap;
use std::time::Instant;

/// The OptPrune physical plan generator.
#[derive(Debug, Clone, Copy)]
pub struct OptPrune {
    /// Hard cap on search-tree expansions (a backstop far above what the
    /// paper's query sizes ever need; the bound from GreedyPhy keeps the
    /// practical search tiny).
    pub max_expansions: usize,
}

impl Default for OptPrune {
    fn default() -> Self {
        Self {
            max_expansions: 2_000_000,
        }
    }
}

impl OptPrune {
    /// Maximum number of operators supported (configuration enumeration is
    /// exponential in the operator count).
    pub const MAX_OPERATORS: usize = 20;

    /// Create an OptPrune generator with default limits.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Enumerate the feasible single-machine configurations (Algorithm 5 line 1)
/// and order them by weight-density: killed occurrence weight per covered
/// operator, ascending (ties towards larger configurations, then towards the
/// lower operator bitmask). Low-damage, high-coverage configurations come
/// first so the first complete plans the DFS reaches are already strong and
/// the score bound bites early.
///
/// Also returns, per configuration, the profiles it violates on one machine
/// (in profile index order) — the kill lists are a byproduct of the density
/// computation, so computing them here saves the search a second
/// `config_load_under` sweep over the whole enumeration.
///
/// Shared by the optimized search and [`crate::naive::NaiveOptPrune`] so
/// both traverse the identical tree in the identical order.
pub(crate) fn ordered_configs(
    model: &SupportModel,
    capacity: f64,
) -> (Vec<Vec<OperatorId>>, Vec<u32>, Vec<Vec<u32>>) {
    let num_ops = model.num_operators();
    let op_ids: Vec<OperatorId> = model.query().operator_ids();
    let cap_eps = capacity + 1e-9;
    // A profile whose every single-operator load already exceeds the node
    // capacity is violated by every non-empty configuration (all its loads
    // are above `cap_eps > 0`, so any subset sum is at least its largest
    // element). The per-config scans below classify such profiles with one
    // branch instead of a load summation; the weight sums and kill lists
    // keep the exact profile-index iteration order, so the computed
    // densities are bit-identical to the unconditional scan.
    let always_violated: Vec<bool> = model
        .profiles()
        .iter()
        .map(|p| p.loads.iter().all(|l| *l > cap_eps))
        .collect();
    // Non-empty operator subsets that fit on one machine under at least one
    // logical plan — or under no plan at all when the solution is empty /
    // nothing fits (so a valid partition still exists).
    let mut configs: Vec<(Vec<OperatorId>, u32, f64, Vec<u32>)> = Vec::new();
    for mask in 1u32..(1u32 << num_ops) {
        let ops: Vec<OperatorId> = (0..num_ops)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| op_ids[i])
            .collect();
        let feasible = model.profiles().is_empty()
            || ops.len() == 1
            || (0..model.profiles().len()).any(|p_idx| {
                !always_violated[p_idx] && model.config_load_under(&ops, p_idx) <= cap_eps
            });
        if feasible {
            // Singleton configs are always allowed so a complete partition
            // exists even when nothing fits (score 0, like GreedyPhy).
            let mut killed = 0.0f64;
            let mut kills: Vec<u32> = Vec::new();
            for (p_idx, p) in model.profiles().iter().enumerate() {
                if always_violated[p_idx] || model.config_load_under(&ops, p_idx) > cap_eps {
                    killed += p.weight;
                    kills.push(p_idx as u32);
                }
            }
            configs.push((ops, mask, killed, kills));
        }
    }
    configs.sort_by(|(a_ops, a_mask, a_kill, _), (b_ops, b_mask, b_kill, _)| {
        let a_density = a_kill / a_ops.len() as f64;
        let b_density = b_kill / b_ops.len() as f64;
        a_density
            .partial_cmp(&b_density)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b_ops.len().cmp(&a_ops.len()))
            .then_with(|| a_mask.cmp(b_mask))
    });
    let mut ops_out = Vec::with_capacity(configs.len());
    let mut masks = Vec::with_capacity(configs.len());
    let mut kills = Vec::with_capacity(configs.len());
    for (ops, mask, _, k) in configs {
        ops_out.push(ops);
        masks.push(mask);
        kills.push(k);
    }
    (ops_out, masks, kills)
}

/// A fully-expanded sibling recorded for the dominance check, keyed by its
/// covered-operator mask.
struct ExpandedState {
    /// Bitmask of profiles still alive (not violated) at the vertex.
    alive: u64,
    /// Running balance (max per-node `lp_max` load) along the path.
    balance: f64,
    /// Machines spent to reach the vertex.
    chosen_len: usize,
}

struct SearchState<'a> {
    cluster: &'a Cluster,
    configs: Vec<Vec<OperatorId>>,
    /// configs represented as bitmasks for fast disjointness tests.
    config_masks: Vec<u32>,
    /// For each configuration, the profiles it violates on one machine.
    config_kills: Vec<Vec<u32>>,
    /// For each configuration, its `lp_max` load on one machine.
    config_balance: Vec<f64>,
    /// For each operator, the configurations containing it, in global order.
    configs_by_op: Vec<Vec<usize>>,
    /// Profile weights, in profile index order.
    weights: Vec<f64>,
    /// Per-profile count of chosen configurations violating it.
    violations: Vec<u32>,
    num_ops: usize,
    best_plan: Option<Vec<usize>>,
    best_score: f64,
    /// Balance (max per-node `lp_max` load) of the best plan found so far;
    /// used only to break ties between equal-score plans in favour of the
    /// more balanced placement (better runtime behaviour, same optimality).
    best_balance: f64,
    total_weight: f64,
    expansions: usize,
    max_expansions: usize,
    nodes_pruned: usize,
    incumbent_updates: usize,
    /// Dominance memo: fully-expanded vertices by covered-operator mask.
    /// A `BTreeMap` so the solver never iterates a hashed container (D1);
    /// in practice it is only probed by key.
    expanded: BTreeMap<u32, Vec<ExpandedState>>,
    expanded_entries: usize,
    /// The dominance check needs one bit per profile.
    dominance_enabled: bool,
}

/// Caps on the dominance memo so pathological searches stay bounded.
const MAX_STATES_PER_MASK: usize = 24;
const MAX_MEMO_ENTRIES: usize = 100_000;

impl<'a> SearchState<'a> {
    /// Score of the current partial assignment: total weight of profiles not
    /// violated by any chosen configuration. One pass in profile index order
    /// — the identical float summation the reference recomputes from scratch.
    fn partial_score(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.violations)
            .filter(|(_, v)| **v == 0)
            .map(|(w, _)| *w)
            .sum()
    }

    /// Bitmask of currently-alive profiles (dominance check key material).
    fn alive_mask(&self) -> u64 {
        self.violations
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == 0)
            .fold(0u64, |m, (p, _)| m | (1u64 << p))
    }

    fn dfs(&mut self, chosen: &mut Vec<usize>, covered: u32, path_balance: f64) {
        if self.expansions >= self.max_expansions {
            return;
        }
        self.expansions += 1;

        let all_covered = covered.count_ones() as usize == self.num_ops;
        if all_covered {
            let score = self.partial_score();
            let balance = path_balance;
            let better_score = score > self.best_score + 1e-12;
            let equal_but_more_balanced =
                (score - self.best_score).abs() <= 1e-12 && balance < self.best_balance - 1e-12;
            // Only adopt a complete plan when it is at least as good as the
            // incumbent bound (which starts at the GreedyPhy score); the
            // GreedyPhy plan itself remains the fallback otherwise.
            if better_score || equal_but_more_balanced {
                self.best_score = score.max(self.best_score);
                self.best_balance = balance;
                self.best_plan = Some(chosen.clone());
                self.incumbent_updates += 1;
            }
            return;
        }
        if chosen.len() >= self.cluster.num_nodes() {
            return; // no machines left
        }
        // Prune: even keeping every currently-unviolated plan cannot beat the
        // bound (the GreedyPhy plan is always available as a fallback, so
        // pruning below its score is safe from the start — Theorem 3).
        let upper = self.partial_score();
        if upper < self.best_score - 1e-12 {
            self.nodes_pruned += 1;
            return;
        }
        // Balance-aware bound: completions below can only tie the incumbent
        // score (score ≤ upper ≤ best + ε), and their balance is at least the
        // running balance, so the equal-score tie-break can never fire either.
        if upper <= self.best_score + 1e-12 && path_balance >= self.best_balance - 1e-12 {
            self.nodes_pruned += 1;
            return;
        }
        // Dominance: a fully-expanded sibling covering the same operators
        // with a superset of our surviving profiles, no worse balance and no
        // more machines spent has already reached every completion we could,
        // with equal-or-better score (float addition is monotone, so a
        // superset's index-ordered weight sum is ≥ the subset's) and balance.
        let alive = if self.dominance_enabled {
            let alive = self.alive_mask();
            if let Some(states) = self.expanded.get(&covered) {
                let dominated = states.iter().any(|s| {
                    s.alive & alive == alive
                        && s.balance <= path_balance
                        && s.chosen_len <= chosen.len()
                });
                if dominated {
                    self.nodes_pruned += 1;
                    return;
                }
            }
            alive
        } else {
            0
        };
        // Branch on configurations containing the lowest-indexed uncovered
        // operator, so each partition is enumerated exactly once.
        let first_uncovered = (0..self.num_ops)
            .find(|i| covered & (1 << i) == 0)
            .expect("not all covered");
        for pos in 0..self.configs_by_op[first_uncovered].len() {
            let c_idx = self.configs_by_op[first_uncovered][pos];
            let mask = self.config_masks[c_idx];
            if mask & covered != 0 {
                continue;
            }
            chosen.push(c_idx);
            for k in 0..self.config_kills[c_idx].len() {
                let p = self.config_kills[c_idx][k] as usize;
                self.violations[p] += 1;
            }
            let child_balance = path_balance.max(self.config_balance[c_idx]);
            self.dfs(chosen, covered | mask, child_balance);
            chosen.pop();
            for k in 0..self.config_kills[c_idx].len() {
                let p = self.config_kills[c_idx][k] as usize;
                self.violations[p] -= 1;
            }
            if self.expansions >= self.max_expansions {
                return;
            }
            // Early exit: a complete plan supporting every logical plan is optimal.
            if self.best_plan.is_some()
                && (self.best_score - self.total_weight).abs() < 1e-12
                && self.total_weight > 0.0
            {
                return;
            }
        }
        // The children loop ran to completion: this vertex is fully expanded
        // and may dominate later siblings with the same covered set.
        if self.dominance_enabled && self.expanded_entries < MAX_MEMO_ENTRIES {
            let states = self.expanded.entry(covered).or_default();
            if states.len() < MAX_STATES_PER_MASK {
                states.push(ExpandedState {
                    alive,
                    balance: path_balance,
                    chosen_len: chosen.len(),
                });
                self.expanded_entries += 1;
            }
        }
    }
}

impl PhysicalPlanGenerator for OptPrune {
    fn name(&self) -> &'static str {
        "OptPrune"
    }

    fn generate(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats)> {
        // rld-allow(D2): compile-time solver wall-ms, reported in SolveStats only — never a tuple result
        let start = Instant::now();
        let num_ops = model.num_operators();
        if num_ops > Self::MAX_OPERATORS {
            return Err(RldError::InvalidArgument(format!(
                "OptPrune supports up to {} operators, query has {num_ops}",
                Self::MAX_OPERATORS
            )));
        }
        if !cluster.is_homogeneous() {
            return Err(RldError::InvalidArgument(
                "OptPrune assumes a homogeneous cluster (as in the paper)".into(),
            ));
        }
        let capacity = cluster.capacities()[0];

        // Seed the bound with GreedyPhy (Algorithm 5 lines 2-3).
        let (greedy_plan, _greedy_stats) = GreedyPhy::new().generate(model, cluster)?;
        let greedy_score = model.score(&greedy_plan, cluster);

        let (configs, config_masks, config_kills) = ordered_configs(model, capacity);
        let num_profiles = model.profiles().len();
        let lp_max = model.lp_max_loads();
        let config_balance: Vec<f64> = configs
            .iter()
            .map(|ops| ops.iter().map(|op| lp_max[op.index()]).sum::<f64>())
            .collect();
        let mut configs_by_op: Vec<Vec<usize>> = vec![Vec::new(); num_ops];
        for (c_idx, mask) in config_masks.iter().enumerate() {
            for (op, ops) in configs_by_op.iter_mut().enumerate() {
                if mask & (1 << op) != 0 {
                    ops.push(c_idx);
                }
            }
        }

        let mut state = SearchState {
            cluster,
            configs,
            config_masks,
            config_kills,
            config_balance,
            configs_by_op,
            weights: model.profiles().iter().map(|p| p.weight).collect(),
            violations: vec![0; num_profiles],
            num_ops,
            best_plan: None,
            best_score: greedy_score,
            best_balance: f64::INFINITY,
            total_weight: model.total_weight(),
            expansions: 0,
            max_expansions: self.max_expansions,
            nodes_pruned: 0,
            incumbent_updates: 0,
            expanded: BTreeMap::new(),
            expanded_entries: 0,
            dominance_enabled: num_profiles <= 64,
        };
        let mut chosen = Vec::new();
        state.dfs(&mut chosen, 0, 0.0);

        let plan = match state.best_plan {
            Some(chosen) => {
                let mut assignment: Vec<Vec<OperatorId>> =
                    chosen.iter().map(|c| state.configs[*c].clone()).collect();
                assignment.resize(cluster.num_nodes(), Vec::new());
                let candidate = PhysicalPlan::new(model.query(), assignment)?;
                // Never return anything worse than the GreedyPhy bound.
                if model.score(&candidate, cluster) + 1e-12 >= greedy_score {
                    candidate
                } else {
                    greedy_plan
                }
            }
            // The DFS found nothing better than (or equal to) GreedyPhy.
            None => greedy_plan,
        };
        let mut stats = model.stats_for(
            &plan,
            cluster,
            start.elapsed().as_micros() as u64,
            state.expansions,
        );
        stats.nodes_pruned = state.nodes_pruned;
        stats.incumbent_updates = state.incumbent_updates;
        Ok((plan, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustivePhysicalSearch;
    use rld_paramspace::OccurrenceModel;

    fn model(uncertainty: u32, steps: usize) -> (rld_common::Query, SupportModel) {
        let (q, space, solution) = crate::support::tests::build_fixture(uncertainty, steps);
        let m = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        (q, m)
    }

    #[test]
    fn optprune_matches_exhaustive_score() {
        let (_q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        for fraction in [0.3, 0.5, 0.8] {
            let cluster = Cluster::homogeneous(3, total * fraction).unwrap();
            let (_, opt_stats) = OptPrune::new().generate(&m, &cluster).unwrap();
            let (_, es_stats) = ExhaustivePhysicalSearch::new()
                .generate(&m, &cluster)
                .unwrap();
            assert!(
                (opt_stats.score - es_stats.score).abs() < 1e-9,
                "fraction {fraction}: OptPrune {} != ES {}",
                opt_stats.score,
                es_stats.score
            );
        }
    }

    #[test]
    fn optprune_never_worse_than_greedy() {
        let (_q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        for fraction in [0.2, 0.4, 0.6, 1.0] {
            let cluster = Cluster::homogeneous(2, total * fraction).unwrap();
            let (_, g) = GreedyPhy::new().generate(&m, &cluster).unwrap();
            let (_, o) = OptPrune::new().generate(&m, &cluster).unwrap();
            assert!(
                o.score + 1e-9 >= g.score,
                "fraction {fraction}: OptPrune {} < GreedyPhy {}",
                o.score,
                g.score
            );
        }
    }

    #[test]
    fn ample_resources_support_everything() {
        let (_q, m) = model(2, 7);
        let cluster = Cluster::homogeneous(3, 1e9).unwrap();
        let (pp, stats) = OptPrune::new().generate(&m, &cluster).unwrap();
        assert_eq!(stats.dropped_plans, 0);
        assert_eq!(pp.num_operators(), m.num_operators());
        assert!((stats.score - m.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_cluster_rejected() {
        let (_q, m) = model(2, 7);
        let cluster = Cluster::new(vec![10.0, 20.0]).unwrap();
        assert!(OptPrune::new().generate(&m, &cluster).is_err());
    }

    #[test]
    fn tiny_capacity_still_partitions() {
        let (_q, m) = model(2, 7);
        let cluster = Cluster::homogeneous(5, 1e-6).unwrap();
        let (pp, stats) = OptPrune::new().generate(&m, &cluster).unwrap();
        assert_eq!(pp.num_operators(), m.num_operators());
        assert_eq!(stats.score, 0.0);
    }

    #[test]
    fn pruning_counters_are_reported() {
        let (_q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        let cluster = Cluster::homogeneous(3, total * 0.5).unwrap();
        let (_, stats) = OptPrune::new().generate(&m, &cluster).unwrap();
        // The search must have actually searched (and pruned) something.
        assert!(stats.nodes_expanded > 0);
        assert!(stats.nodes_pruned > 0 || stats.incumbent_updates > 0);
    }
}
