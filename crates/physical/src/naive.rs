//! Retained naive reference implementations of the physical solvers.
//!
//! These are the pre-optimization bodies of [`crate::llf::llf_assign`],
//! [`crate::greedy::GreedyPhy`] and [`crate::optprune::OptPrune`], kept
//! verbatim (minus wall-clock timing — the bench harness times them from the
//! outside) so the `physical_scale` bench and the solver-equivalence
//! proptests can assert that the optimized paths produce **bit-identical
//! placements**, not just equal scores. They scan every node per operator,
//! rebuild load vectors per drop, and recompute partial scores per DFS
//! vertex — exactly the quadratic-or-worse behaviour the optimized solvers
//! exist to avoid. Do not use them outside benchmarks and tests.
//!
//! `NaiveOptPrune` shares [`crate::optprune`]'s configuration enumeration and
//! weight-density ordering so both searches traverse the same tree in the
//! same order; the optimized solver differs only in how it scores and prunes.

use crate::cluster::Cluster;
use crate::optprune::ordered_configs;
use crate::plan::PhysicalPlan;
use crate::support::{PhysicalSearchStats, SupportModel};
use rld_common::{NodeId, OperatorId, Query, Result, RldError};

/// Assign operators by Largest Load First with a full scan over all nodes
/// per operator — the reference implementation of [`crate::llf::llf_assign`].
pub fn llf_assign_naive(
    query: &Query,
    loads: &[f64],
    cluster: &Cluster,
) -> Result<Option<PhysicalPlan>> {
    assert_eq!(
        loads.len(),
        query.num_operators(),
        "one load per operator required"
    );
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by(|a, b| {
        loads[*b]
            .partial_cmp(&loads[*a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(b))
    });

    let mut remaining: Vec<f64> = cluster.capacities().to_vec();
    let mut node_of = vec![NodeId::new(0); loads.len()];
    for op_idx in order {
        // Pick the node with the most remaining capacity.
        let (best_node, best_remaining) = remaining
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("cluster has at least one node");
        if loads[op_idx] > best_remaining + 1e-9 {
            return Ok(None);
        }
        remaining[best_node] -= loads[op_idx];
        node_of[op_idx] = NodeId::new(best_node);
    }
    Ok(Some(PhysicalPlan::from_mapping(
        query,
        &node_of,
        cluster.num_nodes(),
    )?))
}

/// The reference GreedyPhy: rebuilds the full `lp_max` vector and rescans
/// the whole cluster on every drop attempt.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveGreedyPhy;

impl NaiveGreedyPhy {
    /// Create a reference GreedyPhy generator.
    pub fn new() -> Self {
        Self
    }

    /// Run the reference GreedyPhy and also return which profile indices were
    /// kept. `elapsed_micros` is reported as 0 — callers time externally.
    pub fn generate_with_kept(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats, Vec<usize>)> {
        let mut active: Vec<usize> = (0..model.profiles().len()).collect();
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let lp_max = model.lp_max_loads_of(&active);
            if let Some(pp) = llf_assign_naive(model.query(), &lp_max, cluster)? {
                let stats = model.stats_for(&pp, cluster, 0, attempts);
                return Ok((pp, stats, active));
            }
            if active.is_empty() {
                return Err(RldError::Infeasible(
                    "LLF failed even with no logical plans to support".into(),
                ));
            }
            // Drop the least-weighted plan; ties go to the plan with the
            // larger total worst-case load (frees the most capacity).
            let drop_pos = active
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let pa = &model.profiles()[**a];
                    let pb = &model.profiles()[**b];
                    pa.weight
                        .partial_cmp(&pb.weight)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| {
                            let la: f64 = pa.loads.iter().sum();
                            let lb: f64 = pb.loads.iter().sum();
                            lb.partial_cmp(&la).unwrap_or(std::cmp::Ordering::Equal)
                        })
                })
                .map(|(pos, _)| pos)
                .expect("active set is non-empty");
            active.remove(drop_pos);
        }
    }

    /// Run the reference GreedyPhy.
    pub fn generate(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats)> {
        let (pp, stats, _) = self.generate_with_kept(model, cluster)?;
        Ok((pp, stats))
    }
}

/// The reference OptPrune: recomputes `partial_score` from scratch at every
/// DFS vertex and prunes only on the score bound (Theorem 3) — no dominance
/// check, no incremental state.
#[derive(Debug, Clone, Copy)]
pub struct NaiveOptPrune {
    /// Hard cap on search-tree expansions.
    pub max_expansions: usize,
}

impl Default for NaiveOptPrune {
    fn default() -> Self {
        Self {
            max_expansions: 2_000_000,
        }
    }
}

impl NaiveOptPrune {
    /// Create a reference OptPrune generator with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run the reference OptPrune. `elapsed_micros` is reported as 0 —
    /// callers time externally.
    pub fn generate(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats)> {
        let num_ops = model.num_operators();
        if num_ops > crate::optprune::OptPrune::MAX_OPERATORS {
            return Err(RldError::InvalidArgument(format!(
                "OptPrune supports up to {} operators, query has {num_ops}",
                crate::optprune::OptPrune::MAX_OPERATORS
            )));
        }
        if !cluster.is_homogeneous() {
            return Err(RldError::InvalidArgument(
                "OptPrune assumes a homogeneous cluster (as in the paper)".into(),
            ));
        }
        let capacity = cluster.capacities()[0];

        // Seed the bound with the reference GreedyPhy (Algorithm 5 lines 2-3).
        let (greedy_plan, _greedy_stats) = NaiveGreedyPhy::new().generate(model, cluster)?;
        let greedy_score = model.score(&greedy_plan, cluster);

        // The reference search recomputes per-vertex violations itself; the
        // precomputed kill lists are only consumed by the optimized solver.
        let (configs, config_masks, _config_kills) = ordered_configs(model, capacity);

        let mut state = NaiveSearchState {
            model,
            cluster,
            capacity,
            configs,
            config_masks,
            num_ops,
            best_plan: None,
            best_score: greedy_score,
            best_balance: f64::INFINITY,
            lp_max: model.lp_max_loads().to_vec(),
            total_weight: model.total_weight(),
            expansions: 0,
            max_expansions: self.max_expansions,
        };
        let mut chosen = Vec::new();
        state.dfs(&mut chosen, 0);

        let plan = match state.best_plan {
            Some(chosen) => {
                let mut assignment: Vec<Vec<OperatorId>> =
                    chosen.iter().map(|c| state.configs[*c].clone()).collect();
                assignment.resize(cluster.num_nodes(), Vec::new());
                let candidate = PhysicalPlan::new(model.query(), assignment)?;
                // Never return anything worse than the GreedyPhy bound.
                if model.score(&candidate, cluster) + 1e-12 >= greedy_score {
                    candidate
                } else {
                    greedy_plan
                }
            }
            None => greedy_plan,
        };
        let stats = model.stats_for(&plan, cluster, 0, state.expansions);
        Ok((plan, stats))
    }
}

struct NaiveSearchState<'a> {
    model: &'a SupportModel,
    cluster: &'a Cluster,
    capacity: f64,
    configs: Vec<Vec<OperatorId>>,
    config_masks: Vec<u32>,
    num_ops: usize,
    best_plan: Option<Vec<usize>>,
    best_score: f64,
    best_balance: f64,
    lp_max: Vec<f64>,
    total_weight: f64,
    expansions: usize,
    max_expansions: usize,
}

impl<'a> NaiveSearchState<'a> {
    /// Score of a partial assignment: total weight of profiles not violated
    /// by any chosen configuration — recomputed from scratch.
    fn partial_score(&self, chosen: &[usize]) -> f64 {
        self.model
            .profiles()
            .iter()
            .enumerate()
            .filter(|(p_idx, _)| {
                chosen.iter().all(|c| {
                    self.model.config_load_under(&self.configs[*c], *p_idx) <= self.capacity + 1e-9
                })
            })
            .map(|(_, p)| p.weight)
            .sum()
    }

    fn dfs(&mut self, chosen: &mut Vec<usize>, covered: u32) {
        if self.expansions >= self.max_expansions {
            return;
        }
        self.expansions += 1;

        let all_covered = covered.count_ones() as usize == self.num_ops;
        if all_covered {
            let score = self.partial_score(chosen);
            let balance = chosen
                .iter()
                .map(|c| {
                    self.configs[*c]
                        .iter()
                        .map(|op| self.lp_max[op.index()])
                        .sum::<f64>()
                })
                .fold(0.0f64, f64::max);
            let better_score = score > self.best_score + 1e-12;
            let equal_but_more_balanced =
                (score - self.best_score).abs() <= 1e-12 && balance < self.best_balance - 1e-12;
            if better_score || equal_but_more_balanced {
                self.best_score = score.max(self.best_score);
                self.best_balance = balance;
                self.best_plan = Some(chosen.clone());
            }
            return;
        }
        if chosen.len() >= self.cluster.num_nodes() {
            return; // no machines left
        }
        // Prune: even keeping every currently-unviolated plan cannot beat the
        // bound (Theorem 3).
        let upper = self.partial_score(chosen);
        if upper < self.best_score - 1e-12 {
            return;
        }
        let first_uncovered = (0..self.num_ops)
            .find(|i| covered & (1 << i) == 0)
            .expect("not all covered");
        for c_idx in 0..self.configs.len() {
            let mask = self.config_masks[c_idx];
            if mask & (1 << first_uncovered) == 0 || mask & covered != 0 {
                continue;
            }
            chosen.push(c_idx);
            self.dfs(chosen, covered | mask);
            chosen.pop();
            if self.expansions >= self.max_expansions {
                return;
            }
            // Early exit: a complete plan supporting every logical plan is optimal.
            if self.best_plan.is_some()
                && (self.best_score - self.total_weight).abs() < 1e-12
                && self.total_weight > 0.0
            {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyPhy;
    use crate::llf::llf_assign;
    use crate::optprune::OptPrune;
    use crate::PhysicalPlanGenerator;
    use rld_paramspace::OccurrenceModel;

    fn model(uncertainty: u32, steps: usize) -> (rld_common::Query, SupportModel) {
        let (q, space, solution) = crate::support::tests::build_fixture(uncertainty, steps);
        let m = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        (q, m)
    }

    #[test]
    fn heap_llf_matches_naive_scan() {
        let q = Query::q1_stock_monitoring();
        let clusters = [
            Cluster::homogeneous(2, 100.0).unwrap(),
            Cluster::homogeneous(7, 55.0).unwrap(),
            Cluster::new(vec![100.0, 20.0, 80.0, 80.0, 20.0]).unwrap(),
        ];
        let load_sets = [
            vec![50.0, 40.0, 30.0, 20.0, 10.0],
            vec![90.0, 5.0, 5.0, 5.0, 5.0],
            vec![0.0; 5],
            vec![60.0, 60.0, 60.0, 60.0, 60.0],
            vec![80.0, 80.0, 80.0, 10.0, 10.0],
        ];
        for cluster in &clusters {
            for loads in &load_sets {
                let fast = llf_assign(&q, loads, cluster).unwrap();
                let slow = llf_assign_naive(&q, loads, cluster).unwrap();
                assert_eq!(fast, slow, "loads {loads:?} on {cluster:?}");
            }
        }
    }

    #[test]
    fn incremental_greedy_matches_naive() {
        let (_q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        for fraction in [0.2, 0.35, 0.6, 1.0] {
            for n in [2usize, 3, 5] {
                let cluster = Cluster::homogeneous(n, total * fraction).unwrap();
                let (fast_pp, fast_stats, fast_kept) =
                    GreedyPhy::new().generate_with_kept(&m, &cluster).unwrap();
                let (slow_pp, slow_stats, slow_kept) = NaiveGreedyPhy::new()
                    .generate_with_kept(&m, &cluster)
                    .unwrap();
                assert_eq!(fast_pp, slow_pp, "n={n} fraction={fraction}");
                assert_eq!(fast_kept, slow_kept);
                assert_eq!(fast_stats.score, slow_stats.score);
                assert_eq!(fast_stats.nodes_expanded, slow_stats.nodes_expanded);
            }
        }
    }

    #[test]
    fn pruned_optprune_matches_naive_placement_and_score() {
        let (_q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        for fraction in [0.3, 0.5, 0.8] {
            for n in [2usize, 3] {
                let cluster = Cluster::homogeneous(n, total * fraction).unwrap();
                let (fast_pp, fast_stats) = OptPrune::new().generate(&m, &cluster).unwrap();
                let (slow_pp, slow_stats) = NaiveOptPrune::new().generate(&m, &cluster).unwrap();
                assert_eq!(fast_pp, slow_pp, "n={n} fraction={fraction}");
                assert_eq!(fast_stats.score, slow_stats.score);
                assert!(fast_stats.nodes_expanded <= slow_stats.nodes_expanded);
            }
        }
    }
}
