//! Physical plans: operator-to-machine assignments (Definition 3).

use crate::cluster::Cluster;
use rld_common::{NodeId, OperatorId, Query, Result, RldError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An assignment of every query operator to exactly one cluster node
/// (the paper's `pp`; Definition 3 conditions 2 and 3 — partition of the
/// operator set — are structural invariants of this type, while condition 1 —
/// per-node capacity — depends on the logical plans being supported and is
/// checked by [`crate::support::SupportModel`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysicalPlan {
    /// `assignment[node]` is the sorted set of operators placed on that node.
    assignment: Vec<Vec<OperatorId>>,
}

impl PhysicalPlan {
    /// Build a plan from per-node operator sets.
    ///
    /// Validates the partition conditions: every operator of `query` appears
    /// exactly once, and no unknown operator appears.
    pub fn new(query: &Query, mut assignment: Vec<Vec<OperatorId>>) -> Result<Self> {
        let mut seen = vec![false; query.num_operators()];
        for ops in &assignment {
            for op in ops {
                let idx = op.index();
                if idx >= seen.len() {
                    return Err(RldError::InvalidArgument(format!(
                        "physical plan references unknown operator {op}"
                    )));
                }
                if seen[idx] {
                    return Err(RldError::InvalidArgument(format!(
                        "operator {op} assigned to more than one node"
                    )));
                }
                seen[idx] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(RldError::InvalidArgument(format!(
                "operator op{missing} is not assigned to any node"
            )));
        }
        for ops in &mut assignment {
            ops.sort();
        }
        Ok(Self { assignment })
    }

    /// Build a plan from a flat `operator index → node` mapping.
    pub fn from_mapping(query: &Query, node_of: &[NodeId], num_nodes: usize) -> Result<Self> {
        if node_of.len() != query.num_operators() {
            return Err(RldError::InvalidArgument(format!(
                "mapping covers {} operators but query has {}",
                node_of.len(),
                query.num_operators()
            )));
        }
        let mut assignment = vec![Vec::new(); num_nodes];
        for (op_idx, node) in node_of.iter().enumerate() {
            if node.index() >= num_nodes {
                return Err(RldError::InvalidArgument(format!(
                    "operator op{op_idx} mapped to unknown node {node}"
                )));
            }
            assignment[node.index()].push(OperatorId::new(op_idx));
        }
        Self::new(query, assignment)
    }

    /// Number of nodes in the assignment (including empty ones).
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// Operators placed on a node.
    pub fn operators_on(&self, node: NodeId) -> &[OperatorId] {
        &self.assignment[node.index()]
    }

    /// The node hosting an operator.
    pub fn node_of(&self, op: OperatorId) -> Option<NodeId> {
        self.assignment
            .iter()
            .position(|ops| ops.contains(&op))
            .map(NodeId::new)
    }

    /// All (node, operators) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[OperatorId])> {
        self.assignment
            .iter()
            .enumerate()
            .map(|(i, ops)| (NodeId::new(i), ops.as_slice()))
    }

    /// Only the (node, operators) pairs that actually host operators.
    ///
    /// Capacity checks over wide clusters use this: a plan on 512 nodes has
    /// at most `num_operators()` occupied entries, so probing occupied nodes
    /// is O(operators) instead of O(nodes).
    pub fn occupied(&self) -> impl Iterator<Item = (NodeId, &[OperatorId])> {
        self.iter().filter(|(_, ops)| !ops.is_empty())
    }

    /// Total number of operators assigned.
    pub fn num_operators(&self) -> usize {
        self.assignment.iter().map(Vec::len).sum()
    }

    /// Number of nodes that actually host at least one operator.
    pub fn used_nodes(&self) -> usize {
        self.assignment.iter().filter(|ops| !ops.is_empty()).count()
    }

    /// Whether the plan fits the given cluster (same or fewer nodes).
    pub fn fits_cluster(&self, cluster: &Cluster) -> bool {
        self.num_nodes() <= cluster.num_nodes()
    }

    /// Produce a copy migrated so that `op` runs on `target` instead of its
    /// current node (used by the DYN baseline). Returns an error if the
    /// operator is unknown or the target node does not exist in the plan.
    pub fn with_operator_moved(&self, op: OperatorId, target: NodeId) -> Result<PhysicalPlan> {
        if target.index() >= self.assignment.len() {
            return Err(RldError::NotFound(format!("node {target}")));
        }
        let source = self
            .node_of(op)
            .ok_or_else(|| RldError::NotFound(format!("operator {op}")))?;
        let mut assignment = self.assignment.clone();
        assignment[source.index()].retain(|o| *o != op);
        assignment[target.index()].push(op);
        assignment[target.index()].sort();
        Ok(PhysicalPlan { assignment })
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ops) in self.assignment.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "n{i}:{{")?;
            for (j, op) in ops.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{op}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(v: &[usize]) -> Vec<OperatorId> {
        v.iter().map(|i| OperatorId::new(*i)).collect()
    }

    #[test]
    fn valid_partition_accepted() {
        let q = Query::q1_stock_monitoring();
        let pp = PhysicalPlan::new(&q, vec![ops(&[0, 2]), ops(&[1, 3, 4])]).unwrap();
        assert_eq!(pp.num_nodes(), 2);
        assert_eq!(pp.num_operators(), 5);
        assert_eq!(pp.used_nodes(), 2);
        assert_eq!(pp.node_of(OperatorId::new(3)), Some(NodeId::new(1)));
        assert_eq!(pp.operators_on(NodeId::new(0)), &ops(&[0, 2])[..]);
    }

    #[test]
    fn missing_or_duplicate_operator_rejected() {
        let q = Query::q1_stock_monitoring();
        assert!(PhysicalPlan::new(&q, vec![ops(&[0, 1]), ops(&[2, 3])]).is_err());
        assert!(PhysicalPlan::new(&q, vec![ops(&[0, 1, 2]), ops(&[2, 3, 4])]).is_err());
        assert!(PhysicalPlan::new(&q, vec![ops(&[0, 1, 2, 3, 4, 7])]).is_err());
    }

    #[test]
    fn from_mapping_round_trips() {
        let q = Query::q1_stock_monitoring();
        let mapping = vec![
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(0),
            NodeId::new(2),
            NodeId::new(1),
        ];
        let pp = PhysicalPlan::from_mapping(&q, &mapping, 3).unwrap();
        for (op_idx, node) in mapping.iter().enumerate() {
            assert_eq!(pp.node_of(OperatorId::new(op_idx)), Some(*node));
        }
        assert!(PhysicalPlan::from_mapping(&q, &mapping, 2).is_err());
        assert!(PhysicalPlan::from_mapping(&q, &mapping[..3], 3).is_err());
    }

    #[test]
    fn empty_nodes_are_allowed() {
        let q = Query::q1_stock_monitoring();
        let pp = PhysicalPlan::new(&q, vec![ops(&[0, 1, 2, 3, 4]), vec![], vec![]]).unwrap();
        assert_eq!(pp.num_nodes(), 3);
        assert_eq!(pp.used_nodes(), 1);
        let cluster = Cluster::homogeneous(3, 100.0).unwrap();
        assert!(pp.fits_cluster(&cluster));
        let small = Cluster::homogeneous(2, 100.0).unwrap();
        assert!(!pp.fits_cluster(&small));
    }

    #[test]
    fn operator_migration() {
        let q = Query::q1_stock_monitoring();
        let pp = PhysicalPlan::new(&q, vec![ops(&[0, 2]), ops(&[1, 3, 4])]).unwrap();
        let moved = pp
            .with_operator_moved(OperatorId::new(2), NodeId::new(1))
            .unwrap();
        assert_eq!(moved.node_of(OperatorId::new(2)), Some(NodeId::new(1)));
        assert_eq!(moved.num_operators(), 5);
        assert!(pp
            .with_operator_moved(OperatorId::new(2), NodeId::new(9))
            .is_err());
    }

    #[test]
    fn display_is_compact() {
        let q = Query::q1_stock_monitoring();
        let pp = PhysicalPlan::new(&q, vec![ops(&[0]), ops(&[1, 2, 3, 4])]).unwrap();
        let text = pp.to_string();
        assert!(text.contains("n0:{op0}"));
        assert!(text.contains("n1:{op1,op2,op3,op4}"));
    }
}
