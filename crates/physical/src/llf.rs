//! Largest Load First (LLF) list scheduling.
//!
//! The packing primitive used by GreedyPhy (the paper calls it LLF / Longest
//! Processing Time): operators are sorted by decreasing load and assigned one
//! by one to the node with the most remaining capacity. Returns `None` when
//! some operator does not fit anywhere — the signal that makes GreedyPhy drop
//! a logical plan.

use crate::cluster::Cluster;
use crate::plan::PhysicalPlan;
use rld_common::{NodeId, OperatorId, Query, Result};

/// Assign operators to nodes by Largest Load First.
///
/// `loads[i]` is the load of operator `op_i`. Returns `Ok(None)` when the
/// loads cannot be packed within the cluster's capacities.
pub fn llf_assign(query: &Query, loads: &[f64], cluster: &Cluster) -> Result<Option<PhysicalPlan>> {
    assert_eq!(
        loads.len(),
        query.num_operators(),
        "one load per operator required"
    );
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by(|a, b| {
        loads[*b]
            .partial_cmp(&loads[*a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(b))
    });

    let mut remaining: Vec<f64> = cluster.capacities().to_vec();
    let mut node_of = vec![NodeId::new(0); loads.len()];
    for op_idx in order {
        // Pick the node with the most remaining capacity.
        let (best_node, best_remaining) = remaining
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("cluster has at least one node");
        if loads[op_idx] > best_remaining + 1e-9 {
            return Ok(None);
        }
        remaining[best_node] -= loads[op_idx];
        node_of[op_idx] = NodeId::new(best_node);
    }
    Ok(Some(PhysicalPlan::from_mapping(
        query,
        &node_of,
        cluster.num_nodes(),
    )?))
}

/// Per-node total load of a physical plan under a load vector.
pub fn node_loads(pp: &PhysicalPlan, loads: &[f64]) -> Vec<f64> {
    pp.iter()
        .map(|(_, ops)| ops.iter().map(|op: &OperatorId| loads[op.index()]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1() -> Query {
        Query::q1_stock_monitoring()
    }

    #[test]
    fn llf_balances_loads() {
        let q = q1();
        let loads = vec![50.0, 40.0, 30.0, 20.0, 10.0];
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        let pp = llf_assign(&q, &loads, &cluster).unwrap().unwrap();
        let per_node = node_loads(&pp, &loads);
        let total: f64 = per_node.iter().sum();
        assert!((total - 150.0).abs() < 1e-9);
        // LLF on these loads yields 80/70 (or 70/80): well balanced, both under capacity.
        assert!(per_node.iter().all(|l| *l <= 100.0 + 1e-9));
        assert!((per_node[0] - per_node[1]).abs() <= 10.0 + 1e-9);
    }

    #[test]
    fn llf_detects_infeasibility() {
        let q = q1();
        let loads = vec![80.0, 80.0, 80.0, 10.0, 10.0];
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        assert!(llf_assign(&q, &loads, &cluster).unwrap().is_none());
        // A single operator larger than any node.
        let loads = vec![150.0, 1.0, 1.0, 1.0, 1.0];
        assert!(llf_assign(&q, &loads, &cluster).unwrap().is_none());
    }

    #[test]
    fn llf_handles_zero_loads() {
        let q = q1();
        let loads = vec![0.0; 5];
        let cluster = Cluster::homogeneous(3, 10.0).unwrap();
        let pp = llf_assign(&q, &loads, &cluster).unwrap().unwrap();
        assert_eq!(pp.num_operators(), 5);
    }

    #[test]
    fn llf_respects_heterogeneous_capacity() {
        let q = q1();
        let loads = vec![90.0, 5.0, 5.0, 5.0, 5.0];
        // Only the big node can take op0.
        let cluster = Cluster::new(vec![100.0, 20.0]).unwrap();
        let pp = llf_assign(&q, &loads, &cluster).unwrap().unwrap();
        assert_eq!(pp.node_of(OperatorId::new(0)), Some(NodeId::new(0)));
        let per_node = node_loads(&pp, &loads);
        assert!(per_node[0] <= 100.0 + 1e-9);
        assert!(per_node[1] <= 20.0 + 1e-9);
    }

    #[test]
    fn llf_uses_more_nodes_when_needed() {
        let q = q1();
        let loads = vec![60.0, 60.0, 60.0, 60.0, 60.0];
        let cluster = Cluster::homogeneous(5, 100.0).unwrap();
        let pp = llf_assign(&q, &loads, &cluster).unwrap().unwrap();
        assert_eq!(pp.used_nodes(), 5);
    }

    #[test]
    #[should_panic(expected = "one load per operator required")]
    fn llf_panics_on_wrong_load_vector() {
        let q = q1();
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        let _ = llf_assign(&q, &[1.0, 2.0], &cluster);
    }
}
