//! Largest Load First (LLF) list scheduling.
//!
//! The packing primitive used by GreedyPhy (the paper calls it LLF / Longest
//! Processing Time): operators are sorted by decreasing load and assigned one
//! by one to the node with the most remaining capacity. Returns `None` when
//! some operator does not fit anywhere — the signal that makes GreedyPhy drop
//! a logical plan.
//!
//! The packer exploits that a pack only ever *touches* at most one node per
//! operator: nodes are pre-sorted once by `(capacity desc, node id desc)`, so
//! the best still-pristine node is always the next entry of that order, and
//! the handful of touched nodes (≤ number of operators) are scanned directly.
//! That turns the naive per-operator scan over all `N` nodes into work
//! proportional to the operator count — the difference between O(ops·N) and
//! O(ops²) per pack on a 512-node cluster. Placements are bit-identical to
//! the naive scan: the scan's `max_by` keeps the *last* maximum, i.e. the
//! highest node id among equal headrooms, which is exactly the
//! `(headroom, node id)` lexicographic maximum the packer computes.

use crate::cluster::Cluster;
use crate::plan::PhysicalPlan;
use rld_common::{NodeId, OperatorId, Query, Result};

/// A reusable LLF packing context for one cluster.
///
/// Construction sorts the cluster's nodes once; every subsequent
/// [`LlfPacker::pack`] call runs in time proportional to the operator count,
/// not the node count. GreedyPhy holds one packer across all of its drop
/// attempts so the sort is amortized over the whole solve.
#[derive(Debug, Clone)]
pub struct LlfPacker {
    /// Node indices sorted by `(capacity desc, node id desc)`. The first
    /// entry not yet consumed by a pack is always the best pristine node
    /// under LLF's tie rule (highest node id wins among equal headrooms).
    order: Vec<usize>,
    capacities: Vec<f64>,
}

impl LlfPacker {
    /// Build a packer for a cluster (sorts the nodes once).
    pub fn new(cluster: &Cluster) -> Self {
        let capacities = cluster.capacities().to_vec();
        // Non-decreasing capacities (homogeneous clusters included): the
        // `(capacity desc, node id desc)` comparator is a total order, and
        // reverse node-id order is its unique sorted result — skip the
        // float-comparator sort entirely.
        let order: Vec<usize> = if capacities.windows(2).all(|w| w[0] <= w[1]) {
            (0..capacities.len()).rev().collect()
        } else {
            let mut order: Vec<usize> = (0..capacities.len()).collect();
            order.sort_by(|a, b| {
                capacities[*b]
                    .partial_cmp(&capacities[*a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| b.cmp(a))
            });
            order
        };
        Self { order, capacities }
    }

    /// The cluster capacities the packer was built from (node-id order).
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Assign operators to nodes by Largest Load First.
    ///
    /// `loads[i]` is the load of operator `op_i`. Returns `Ok(None)` when the
    /// loads cannot be packed within the cluster's capacities.
    pub fn pack(&self, query: &Query, loads: &[f64]) -> Result<Option<PhysicalPlan>> {
        assert_eq!(
            loads.len(),
            query.num_operators(),
            "one load per operator required"
        );
        let mut op_order: Vec<usize> = (0..loads.len()).collect();
        op_order.sort_by(|a, b| {
            loads[*b]
                .partial_cmp(&loads[*a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });

        // Nodes that have received at least one operator, with their
        // remaining headroom. Every touched node was consumed from the front
        // of `order`, so `order[fresh..]` is exactly the pristine set.
        let mut touched: Vec<(usize, f64)> = Vec::with_capacity(loads.len());
        let mut fresh = 0usize;
        let mut node_of = vec![NodeId::new(0); loads.len()];
        for op_idx in op_order {
            // Lexicographic max over (headroom, node id): scan the touched
            // nodes, then compare against the best pristine node.
            let mut best: Option<(usize, f64, usize)> = None; // (touched pos, headroom, node)
            for (pos, &(node, rem)) in touched.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some((_, brem, bnode)) => rem > brem || (rem == brem && node > bnode),
                };
                if better {
                    best = Some((pos, rem, node));
                }
            }
            let pristine = self.order.get(fresh).map(|n| (*n, self.capacities[*n]));
            let take_pristine = match (best, pristine) {
                (None, Some(_)) => true,
                (_, None) => false,
                (Some((_, brem, bnode)), Some((fnode, frem))) => {
                    frem > brem || (frem == brem && fnode > bnode)
                }
            };
            let best_remaining = if take_pristine {
                pristine.expect("cluster has at least one node").1
            } else {
                best.expect("cluster has at least one node").1
            };
            if loads[op_idx] > best_remaining + 1e-9 {
                return Ok(None);
            }
            if take_pristine {
                let node = self.order[fresh];
                fresh += 1;
                touched.push((node, self.capacities[node] - loads[op_idx]));
                node_of[op_idx] = NodeId::new(node);
            } else {
                let (pos, _, node) = best.expect("touched node selected");
                touched[pos].1 -= loads[op_idx];
                node_of[op_idx] = NodeId::new(node);
            }
        }
        Ok(Some(PhysicalPlan::from_mapping(
            query,
            &node_of,
            self.capacities.len(),
        )?))
    }
}

/// Assign operators to nodes by Largest Load First.
///
/// `loads[i]` is the load of operator `op_i`. Returns `Ok(None)` when the
/// loads cannot be packed within the cluster's capacities. One-shot wrapper
/// around [`LlfPacker`]; callers that pack the same cluster repeatedly
/// (GreedyPhy) should hold a packer instead.
pub fn llf_assign(query: &Query, loads: &[f64], cluster: &Cluster) -> Result<Option<PhysicalPlan>> {
    LlfPacker::new(cluster).pack(query, loads)
}

/// Per-node total load of a physical plan under a load vector.
pub fn node_loads(pp: &PhysicalPlan, loads: &[f64]) -> Vec<f64> {
    pp.iter()
        .map(|(_, ops)| ops.iter().map(|op: &OperatorId| loads[op.index()]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1() -> Query {
        Query::q1_stock_monitoring()
    }

    #[test]
    fn llf_balances_loads() {
        let q = q1();
        let loads = vec![50.0, 40.0, 30.0, 20.0, 10.0];
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        let pp = llf_assign(&q, &loads, &cluster).unwrap().unwrap();
        let per_node = node_loads(&pp, &loads);
        let total: f64 = per_node.iter().sum();
        assert!((total - 150.0).abs() < 1e-9);
        // LLF on these loads yields 80/70 (or 70/80): well balanced, both under capacity.
        assert!(per_node.iter().all(|l| *l <= 100.0 + 1e-9));
        assert!((per_node[0] - per_node[1]).abs() <= 10.0 + 1e-9);
    }

    #[test]
    fn llf_detects_infeasibility() {
        let q = q1();
        let loads = vec![80.0, 80.0, 80.0, 10.0, 10.0];
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        assert!(llf_assign(&q, &loads, &cluster).unwrap().is_none());
        // A single operator larger than any node.
        let loads = vec![150.0, 1.0, 1.0, 1.0, 1.0];
        assert!(llf_assign(&q, &loads, &cluster).unwrap().is_none());
    }

    #[test]
    fn llf_handles_zero_loads() {
        let q = q1();
        let loads = vec![0.0; 5];
        let cluster = Cluster::homogeneous(3, 10.0).unwrap();
        let pp = llf_assign(&q, &loads, &cluster).unwrap().unwrap();
        assert_eq!(pp.num_operators(), 5);
    }

    #[test]
    fn llf_respects_heterogeneous_capacity() {
        let q = q1();
        let loads = vec![90.0, 5.0, 5.0, 5.0, 5.0];
        // Only the big node can take op0.
        let cluster = Cluster::new(vec![100.0, 20.0]).unwrap();
        let pp = llf_assign(&q, &loads, &cluster).unwrap().unwrap();
        assert_eq!(pp.node_of(OperatorId::new(0)), Some(NodeId::new(0)));
        let per_node = node_loads(&pp, &loads);
        assert!(per_node[0] <= 100.0 + 1e-9);
        assert!(per_node[1] <= 20.0 + 1e-9);
    }

    #[test]
    fn llf_uses_more_nodes_when_needed() {
        let q = q1();
        let loads = vec![60.0, 60.0, 60.0, 60.0, 60.0];
        let cluster = Cluster::homogeneous(5, 100.0).unwrap();
        let pp = llf_assign(&q, &loads, &cluster).unwrap().unwrap();
        assert_eq!(pp.used_nodes(), 5);
    }

    #[test]
    fn packer_is_reusable_across_load_vectors() {
        let q = q1();
        let cluster = Cluster::new(vec![100.0, 20.0, 100.0, 50.0]).unwrap();
        let packer = LlfPacker::new(&cluster);
        for loads in [
            vec![50.0, 40.0, 30.0, 20.0, 10.0],
            vec![90.0, 5.0, 5.0, 5.0, 5.0],
            vec![0.0; 5],
        ] {
            let a = packer.pack(&q, &loads).unwrap();
            let b = llf_assign(&q, &loads, &cluster).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "one load per operator required")]
    fn llf_panics_on_wrong_load_vector() {
        let q = q1();
        let cluster = Cluster::homogeneous(2, 100.0).unwrap();
        let _ = llf_assign(&q, &[1.0, 2.0], &cluster);
    }
}
