//! GreedyPhy (Algorithm 4): greedy robust physical plan generation.
//!
//! GreedyPhy packs the *virtual worst-case plan* `lp_max` — for each operator
//! the maximum load it has under any logical plan still being supported —
//! using Largest Load First. When LLF fails, the logical plan with the lowest
//! occurrence weight (ties broken towards the plan with the heavier total
//! load, the paper's `getMinWeightPlanWithMaxOp`) is dropped from the support
//! set and the packing is retried. The result is a physical plan supporting
//! the most probable logical plans, found in linear time.

use crate::cluster::Cluster;
use crate::llf::llf_assign;
use crate::plan::PhysicalPlan;
use crate::support::{PhysicalSearchStats, SupportModel};
use crate::PhysicalPlanGenerator;
use rld_common::{Result, RldError};
use std::time::Instant;

/// The GreedyPhy physical plan generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPhy;

impl GreedyPhy {
    /// Create a GreedyPhy generator.
    pub fn new() -> Self {
        Self
    }

    /// Run GreedyPhy and also return which profile indices were kept.
    pub fn generate_with_kept(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats, Vec<usize>)> {
        // rld-allow(D2): compile-time solver wall-ms, reported in SolveStats only — never a tuple result
        let start = Instant::now();
        let mut active: Vec<usize> = (0..model.profiles().len()).collect();
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let lp_max = model.lp_max_loads_of(&active);
            if let Some(pp) = llf_assign(model.query(), &lp_max, cluster)? {
                let stats =
                    model.stats_for(&pp, cluster, start.elapsed().as_micros() as u64, attempts);
                return Ok((pp, stats, active));
            }
            if active.is_empty() {
                // Even the empty support set (all-zero loads) failed, which
                // can only happen for a degenerate cluster.
                return Err(RldError::Infeasible(
                    "LLF failed even with no logical plans to support".into(),
                ));
            }
            // Drop the least-weighted plan; ties go to the plan with the
            // larger total worst-case load (frees the most capacity).
            let drop_pos = active
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let pa = &model.profiles()[**a];
                    let pb = &model.profiles()[**b];
                    pa.weight
                        .partial_cmp(&pb.weight)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| {
                            let la: f64 = pa.loads.iter().sum();
                            let lb: f64 = pb.loads.iter().sum();
                            lb.partial_cmp(&la).unwrap_or(std::cmp::Ordering::Equal)
                        })
                })
                .map(|(pos, _)| pos)
                .expect("active set is non-empty");
            active.remove(drop_pos);
        }
    }
}

impl PhysicalPlanGenerator for GreedyPhy {
    fn name(&self) -> &'static str {
        "GreedyPhy"
    }

    fn generate(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats)> {
        let (pp, stats, _) = self.generate_with_kept(model, cluster)?;
        Ok((pp, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_paramspace::OccurrenceModel;

    fn model(uncertainty: u32, steps: usize) -> (rld_common::Query, SupportModel) {
        let (q, space, solution) = crate::support::tests::build_fixture(uncertainty, steps);
        let m = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        (q, m)
    }

    #[test]
    fn ample_resources_support_all_plans() {
        let (_q, m) = model(3, 9);
        let cluster = Cluster::homogeneous(4, 1e9).unwrap();
        let (pp, stats) = GreedyPhy::new().generate(&m, &cluster).unwrap();
        assert_eq!(stats.dropped_plans, 0);
        assert!((stats.score - m.total_weight()).abs() < 1e-9);
        assert_eq!(pp.num_operators(), m.num_operators());
        assert_eq!(GreedyPhy::new().name(), "GreedyPhy");
    }

    #[test]
    fn scarce_resources_drop_low_weight_plans_first() {
        let (_q, m) = model(3, 9);
        // Capacity that can hold roughly half of lp_max in total.
        let total: f64 = m.lp_max_loads().iter().sum();
        let cluster = Cluster::homogeneous(2, total * 0.35).unwrap();
        let (pp, stats, kept) = GreedyPhy::new().generate_with_kept(&m, &cluster).unwrap();
        assert_eq!(pp.num_operators(), m.num_operators());
        // Whatever was kept must actually be supported.
        for idx in &kept {
            assert!(m.plan_supported(&pp, *idx, &cluster));
        }
        // Dropped plans (if any) must have weight <= every kept plan's weight.
        if stats.dropped_plans > 0 && !kept.is_empty() {
            let min_kept = kept
                .iter()
                .map(|i| m.profiles()[*i].weight)
                .fold(f64::INFINITY, f64::min);
            let dropped_max = (0..m.profiles().len())
                .filter(|i| !kept.contains(i))
                .map(|i| m.profiles()[i].weight)
                .fold(0.0f64, f64::max);
            assert!(dropped_max <= min_kept + 1e-9);
        }
    }

    #[test]
    fn impossible_cluster_still_produces_a_partition() {
        let (_q, m) = model(2, 7);
        // Tiny capacity: no plan can be supported, but GreedyPhy must still
        // return a valid operator partition (score 0).
        let cluster = Cluster::homogeneous(2, 1e-6).unwrap();
        let (pp, stats) = GreedyPhy::new().generate(&m, &cluster).unwrap();
        assert_eq!(pp.num_operators(), m.num_operators());
        assert_eq!(stats.supported_plans, 0);
        assert_eq!(stats.score, 0.0);
    }

    #[test]
    fn more_machines_never_reduce_score() {
        let (_q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        let cap = total * 0.3;
        let mut prev_score = -1.0;
        for n in 2..=6 {
            let cluster = Cluster::homogeneous(n, cap).unwrap();
            let (_, stats) = GreedyPhy::new().generate(&m, &cluster).unwrap();
            assert!(
                stats.score + 1e-9 >= prev_score,
                "score decreased from {prev_score} to {} at n={n}",
                stats.score
            );
            prev_score = stats.score;
        }
    }
}
