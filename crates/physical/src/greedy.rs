//! GreedyPhy (Algorithm 4): greedy robust physical plan generation.
//!
//! GreedyPhy packs the *virtual worst-case plan* `lp_max` — for each operator
//! the maximum load it has under any logical plan still being supported —
//! using Largest Load First. When LLF fails, the logical plan with the lowest
//! occurrence weight (ties broken towards the plan with the heavier total
//! load, the paper's `getMinWeightPlanWithMaxOp`) is dropped from the support
//! set and the packing is retried. The result is a physical plan supporting
//! the most probable logical plans, found in linear time.
//!
//! The solve is incremental: one [`LlfPacker`] is held across all drop
//! attempts (the node sort is paid once, not per attempt), the whole drop
//! schedule is presorted once — the reference's per-attempt `min_by` scan
//! over (weight asc, total load desc) with first-of-equals tie-breaking is
//! exactly a stable sort by (weight asc, total desc, index asc), so popping
//! the schedule is O(1) per drop — and the `lp_max` vector is maintained by
//! delta: an operator's maximum is only recomputed when the dropped profile
//! was the one attaining it. All comparisons use the same float operand
//! order as a from-scratch rebuild, so placements and drop decisions are
//! bit-identical to [`crate::naive::NaiveGreedyPhy`].

use crate::cluster::Cluster;
use crate::llf::LlfPacker;
use crate::plan::PhysicalPlan;
use crate::support::{PhysicalSearchStats, SupportModel};
use crate::PhysicalPlanGenerator;
use rld_common::{Result, RldError};
use std::collections::HashMap;
use std::time::Instant;

/// The GreedyPhy physical plan generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPhy;

impl GreedyPhy {
    /// Create a GreedyPhy generator.
    pub fn new() -> Self {
        Self
    }

    /// Run GreedyPhy and also return which profile indices were kept.
    pub fn generate_with_kept(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats, Vec<usize>)> {
        self.solve(model, cluster, None)
    }

    /// Run GreedyPhy with a [`PackMemo`]: LLF pack results are looked up by
    /// the exact bit pattern of the `lp_max` vector, so repeated solves over
    /// unchanged plan sets (WRP/ERP frontier sweeps re-evaluating the same
    /// logical solution against one cluster) skip the packing entirely.
    pub fn generate_with_kept_memo(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
        memo: &mut PackMemo,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats, Vec<usize>)> {
        self.solve(model, cluster, Some(memo))
    }

    fn solve(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
        mut memo: Option<&mut PackMemo>,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats, Vec<usize>)> {
        // rld-allow(D2): compile-time solver wall-ms, reported in SolveStats only — never a tuple result
        let start = Instant::now();
        let packer = LlfPacker::new(cluster);
        let profiles = model.profiles();
        let num_ops = model.num_operators();
        // Per-profile total worst-case load, precomputed with the same
        // summation order the naive drop tie-break uses.
        let totals: Vec<f64> = profiles.iter().map(|p| p.loads.iter().sum()).collect();
        // The full drop schedule, presorted. The reference drops the first
        // minimum under (weight asc, total desc) from an index-ascending
        // active list each round; a stable sort with an index-ascending
        // final tie-break yields the identical sequence, making each drop a
        // pointer bump instead of an O(active) scan.
        let mut drop_order: Vec<usize> = (0..profiles.len()).collect();
        drop_order.sort_by(|a, b| {
            profiles[*a]
                .weight
                .partial_cmp(&profiles[*b].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    totals[*b]
                        .partial_cmp(&totals[*a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.cmp(b))
        });
        let mut next_drop = 0usize;
        let mut alive = vec![true; profiles.len()];
        // lp_max over the active set, with the index of the profile attaining
        // each operator's maximum; dropping a non-attaining profile leaves
        // the maximum untouched.
        let mut lp_max = vec![0.0f64; num_ops];
        let mut argmax = vec![usize::MAX; num_ops];
        for (i, p) in profiles.iter().enumerate() {
            for (o, l) in p.loads.iter().enumerate() {
                if *l > lp_max[o] {
                    lp_max[o] = *l;
                    argmax[o] = i;
                }
            }
        }
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let packed = match memo.as_deref_mut() {
                Some(m) => m.pack(&packer, model, &lp_max)?,
                None => packer.pack(model.query(), &lp_max)?,
            };
            if let Some(pp) = packed {
                let stats =
                    model.stats_for(&pp, cluster, start.elapsed().as_micros() as u64, attempts);
                let kept: Vec<usize> = (0..profiles.len()).filter(|i| alive[*i]).collect();
                return Ok((pp, stats, kept));
            }
            if next_drop == drop_order.len() {
                // Even the empty support set (all-zero loads) failed, which
                // can only happen for a degenerate cluster.
                return Err(RldError::Infeasible(
                    "LLF failed even with no logical plans to support".into(),
                ));
            }
            // Drop the least-weighted plan; ties go to the plan with the
            // larger total worst-case load (frees the most capacity).
            let dropped = drop_order[next_drop];
            next_drop += 1;
            alive[dropped] = false;
            // Maintain lp_max by delta: only operators whose maximum the
            // dropped profile attained need a rescan of the active set.
            for o in 0..num_ops {
                if argmax[o] == dropped {
                    lp_max[o] = 0.0;
                    argmax[o] = usize::MAX;
                    for (i, p) in profiles.iter().enumerate() {
                        if !alive[i] {
                            continue;
                        }
                        let l = p.loads[o];
                        if l > lp_max[o] {
                            lp_max[o] = l;
                            argmax[o] = i;
                        }
                    }
                }
            }
        }
    }
}

impl PhysicalPlanGenerator for GreedyPhy {
    fn name(&self) -> &'static str {
        "GreedyPhy"
    }

    fn generate(
        &self,
        model: &SupportModel,
        cluster: &Cluster,
    ) -> Result<(PhysicalPlan, PhysicalSearchStats)> {
        let (pp, stats, _) = self.generate_with_kept(model, cluster)?;
        Ok((pp, stats))
    }
}

/// Memoized LLF pack results, keyed by the exact bit pattern of the load
/// vector (plus a query/cluster fingerprint).
///
/// WRP/ERP frontier evaluation re-solves the same logical solution against
/// the same cluster many times; each re-solve walks the same `lp_max`
/// sequence, so every pack after the first sweep is a lookup. The map is only
/// ever probed with [`HashMap::get`]/[`HashMap::insert`] — it is never
/// iterated, keeping the solver deterministic (invariant D1).
#[derive(Debug, Default)]
pub struct PackMemo {
    packs: HashMap<Vec<u64>, Option<PhysicalPlan>>,
    hits: usize,
    misses: usize,
}

impl PackMemo {
    /// Create an empty memo. Use one memo per (query, cluster) pair or rely
    /// on the built-in fingerprint to keep entries from colliding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of packs answered from the memo.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of packs that had to run.
    pub fn misses(&self) -> usize {
        self.misses
    }

    fn pack(
        &mut self,
        packer: &LlfPacker,
        model: &SupportModel,
        loads: &[f64],
    ) -> Result<Option<PhysicalPlan>> {
        let mut key = Vec::with_capacity(loads.len() + 1);
        key.push(fingerprint_context(model, packer));
        key.extend(loads.iter().map(|l| l.to_bits()));
        if let Some(hit) = self.packs.get(&key) {
            self.hits += 1;
            return Ok(hit.clone());
        }
        self.misses += 1;
        let packed = packer.pack(model.query(), loads)?;
        self.packs.insert(key, packed.clone());
        Ok(packed)
    }
}

/// FNV-1a over the query shape and the packer's node order/capacities, so one
/// memo can be shared across clusters without mixing their entries.
fn fingerprint_context(model: &SupportModel, packer: &LlfPacker) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(model.num_operators() as u64);
    for c in packer.capacities() {
        mix(c.to_bits());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rld_paramspace::OccurrenceModel;

    fn model(uncertainty: u32, steps: usize) -> (rld_common::Query, SupportModel) {
        let (q, space, solution) = crate::support::tests::build_fixture(uncertainty, steps);
        let m = SupportModel::build(&q, &space, &solution, OccurrenceModel::Normal).unwrap();
        (q, m)
    }

    #[test]
    fn ample_resources_support_all_plans() {
        let (_q, m) = model(3, 9);
        let cluster = Cluster::homogeneous(4, 1e9).unwrap();
        let (pp, stats) = GreedyPhy::new().generate(&m, &cluster).unwrap();
        assert_eq!(stats.dropped_plans, 0);
        assert!((stats.score - m.total_weight()).abs() < 1e-9);
        assert_eq!(pp.num_operators(), m.num_operators());
        assert_eq!(GreedyPhy::new().name(), "GreedyPhy");
    }

    #[test]
    fn scarce_resources_drop_low_weight_plans_first() {
        let (_q, m) = model(3, 9);
        // Capacity that can hold roughly half of lp_max in total.
        let total: f64 = m.lp_max_loads().iter().sum();
        let cluster = Cluster::homogeneous(2, total * 0.35).unwrap();
        let (pp, stats, kept) = GreedyPhy::new().generate_with_kept(&m, &cluster).unwrap();
        assert_eq!(pp.num_operators(), m.num_operators());
        // Whatever was kept must actually be supported.
        for idx in &kept {
            assert!(m.plan_supported(&pp, *idx, &cluster));
        }
        // Dropped plans (if any) must have weight <= every kept plan's weight.
        if stats.dropped_plans > 0 && !kept.is_empty() {
            let min_kept = kept
                .iter()
                .map(|i| m.profiles()[*i].weight)
                .fold(f64::INFINITY, f64::min);
            let dropped_max = (0..m.profiles().len())
                .filter(|i| !kept.contains(i))
                .map(|i| m.profiles()[i].weight)
                .fold(0.0f64, f64::max);
            assert!(dropped_max <= min_kept + 1e-9);
        }
    }

    #[test]
    fn impossible_cluster_still_produces_a_partition() {
        let (_q, m) = model(2, 7);
        // Tiny capacity: no plan can be supported, but GreedyPhy must still
        // return a valid operator partition (score 0).
        let cluster = Cluster::homogeneous(2, 1e-6).unwrap();
        let (pp, stats) = GreedyPhy::new().generate(&m, &cluster).unwrap();
        assert_eq!(pp.num_operators(), m.num_operators());
        assert_eq!(stats.supported_plans, 0);
        assert_eq!(stats.score, 0.0);
    }

    #[test]
    fn more_machines_never_reduce_score() {
        let (_q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        let cap = total * 0.3;
        let mut prev_score = -1.0;
        for n in 2..=6 {
            let cluster = Cluster::homogeneous(n, cap).unwrap();
            let (_, stats) = GreedyPhy::new().generate(&m, &cluster).unwrap();
            assert!(
                stats.score + 1e-9 >= prev_score,
                "score decreased from {prev_score} to {} at n={n}",
                stats.score
            );
            prev_score = stats.score;
        }
    }

    #[test]
    fn memoized_solve_is_identical_and_hits_on_repeat() {
        let (_q, m) = model(3, 9);
        let total: f64 = m.lp_max_loads().iter().sum();
        let cluster = Cluster::homogeneous(2, total * 0.35).unwrap();
        let (plain_pp, plain_stats, plain_kept) =
            GreedyPhy::new().generate_with_kept(&m, &cluster).unwrap();
        let mut memo = PackMemo::new();
        let (pp1, stats1, kept1) = GreedyPhy::new()
            .generate_with_kept_memo(&m, &cluster, &mut memo)
            .unwrap();
        assert_eq!(pp1, plain_pp);
        assert_eq!(kept1, plain_kept);
        assert_eq!(stats1.score, plain_stats.score);
        assert_eq!(memo.hits(), 0);
        let first_misses = memo.misses();
        assert!(first_misses >= 1);
        // Second solve over the unchanged plan set: every pack is a lookup.
        let (pp2, _, kept2) = GreedyPhy::new()
            .generate_with_kept_memo(&m, &cluster, &mut memo)
            .unwrap();
        assert_eq!(pp2, plain_pp);
        assert_eq!(kept2, plain_kept);
        assert_eq!(memo.hits(), first_misses);
        assert_eq!(memo.misses(), first_misses);
        // A different cluster does not collide with the first one's entries.
        let other = Cluster::homogeneous(3, total * 0.35).unwrap();
        let (other_pp, _, _) = GreedyPhy::new()
            .generate_with_kept_memo(&m, &other, &mut memo)
            .unwrap();
        let (other_plain, _, _) = GreedyPhy::new().generate_with_kept(&m, &other).unwrap();
        assert_eq!(other_pp, other_plain);
    }
}
